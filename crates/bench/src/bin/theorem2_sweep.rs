//! Supports **Theorem 2** (§3.2), the paper's headline claim: the relaxation
//! cost of MIS (Algorithm 4) is `poly(k)` — independent of graph size or
//! structure. Also checks the matching corollary (§2.4).
//!
//! Three sweeps:
//!
//! 1. size sweep — fixed `k`, `n` growing 100×, `m = 10n` and `m = 50n`:
//!    extra iterations should stay *flat*;
//! 2. relaxation sweep — fixed graph, growing `k`: extra iterations grow
//!    polynomially (log-log slope printed; the paper conjectures exponent 1);
//! 3. structure sweep — same `n, m` across ER / power-law / near-regular /
//!    star-heavy graphs: extra should not depend on structure.
//!
//! Usage: `theorem2_sweep [--reps R] [--seed S] [--quick]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched_bench::{BenchCli, Table};
use rsched_core::algorithms::matching::{MatchingInstance, MatchingTasks};
use rsched_core::algorithms::mis::MisTasks;
use rsched_core::framework::run_relaxed;
use rsched_graph::{gen, CsrGraph, Permutation};
use rsched_queues::relaxed::SimMultiQueue;

fn mis_extra(g: &CsrGraph, reps: usize, k: usize, seed: u64) -> f64 {
    let mut total = 0u64;
    for rep in 0..reps {
        let s = seed + rep as u64 * 104_729;
        let pi = Permutation::random(g.num_vertices(), &mut StdRng::seed_from_u64(s));
        let sched = SimMultiQueue::new(k, StdRng::seed_from_u64(s ^ 0xBEEF));
        let (_, stats) = run_relaxed(MisTasks::new(g, &pi), &pi, sched);
        total += stats.extra_iterations();
    }
    total as f64 / reps as f64
}

fn matching_extra(g: &CsrGraph, reps: usize, k: usize, seed: u64) -> f64 {
    let inst = MatchingInstance::new(g);
    let mut total = 0u64;
    for rep in 0..reps {
        let s = seed + rep as u64 * 104_729;
        let pi = Permutation::random(inst.num_edges(), &mut StdRng::seed_from_u64(s));
        let sched = SimMultiQueue::new(k, StdRng::seed_from_u64(s ^ 0xBEEF));
        let (_, stats) = run_relaxed(MatchingTasks::new(&inst, &pi), &pi, sched);
        total += stats.extra_iterations();
    }
    total as f64 / reps as f64
}

fn main() {
    let Some(cli) = BenchCli::parse(
        "theorem2_sweep",
        "Checks Theorem 2's headline claim: MIS wasted work flat in n for fixed k.",
        &[
            ("--reps N", "repetitions per configuration"),
            ("--seed S", "base RNG seed"),
            ("--k K", "fixed relaxation factor"),
        ],
    ) else {
        return;
    };
    let (args, quick) = (cli.args, cli.quick);
    let reps = args.get_usize("reps", if quick { 2 } else { 5 });
    let seed = args.get_u64("seed", 13);
    let k_fixed = args.get_usize("k", 16);

    println!("Theorem 2 sweeps: MIS (Algorithm 4), simulated MultiQueue scheduler\n");

    // --- size sweep ---
    let sizes: &[usize] = if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000] };
    println!("size sweep (k = {k_fixed}; extra iterations should be flat in n):");
    let mut table = Table::new(&["n", "m=10n extra", "m=50n extra"]);
    for &n in sizes {
        let g10 = gen::gnm(n, 10 * n, &mut StdRng::seed_from_u64(seed));
        let g50 = gen::gnm(n, 50 * n, &mut StdRng::seed_from_u64(seed + 1));
        let e10 = mis_extra(&g10, reps, k_fixed, seed);
        let e50 = mis_extra(&g50, reps, k_fixed, seed);
        table.row(&[&n, &format!("{e10:.1}"), &format!("{e50:.1}")]);
    }
    println!("{table}");

    // --- relaxation sweep ---
    let n = if quick { 10_000 } else { 30_000 };
    let ks: &[usize] = &[2, 4, 8, 16, 32, 64, 128];
    let g = gen::gnm(n, 10 * n, &mut StdRng::seed_from_u64(seed + 2));
    println!("relaxation sweep (n = {n}, m = {}; extra grows poly(k)):", 10 * n);
    let mut table = Table::new(&["k", "MIS extra", "matching extra"]);
    let mut points = Vec::new();
    let gm = gen::gnm(2_000, 8_000, &mut StdRng::seed_from_u64(seed + 3));
    for &k in ks {
        let e = mis_extra(&g, reps, k, seed);
        let em = matching_extra(&gm, reps, k, seed);
        points.push((k as f64, e.max(0.5)));
        table.row(&[&k, &format!("{e:.1}"), &format!("{em:.1}")]);
    }
    println!("{table}");
    // Log-log slope by least squares: the poly(k) exponent estimate.
    let n_pts = points.len() as f64;
    let (sx, sy): (f64, f64) =
        points.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x.ln(), b + y.ln()));
    let (sxx, sxy): (f64, f64) =
        points.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x.ln() * x.ln(), b + x.ln() * y.ln()));
    let slope = (n_pts * sxy - sx * sy) / (n_pts * sxx - sx * sx);
    println!("fitted poly(k) exponent ≈ {slope:.2} (paper proves ≤ 4 + o(1), conjectures 1)\n");

    // --- structure sweep ---
    let sn = if quick { 5_000 } else { 20_000 };
    let sm = 6 * sn;
    println!("structure sweep (n = {sn}, m ≈ {sm}, k = {k_fixed}; extra ≈ structure-independent):");
    let er = gen::gnm(sn, sm, &mut StdRng::seed_from_u64(seed + 4));
    let ba = gen::barabasi_albert(sn, 6, &mut StdRng::seed_from_u64(seed + 5));
    let reg = gen::near_regular(sn, 12, &mut StdRng::seed_from_u64(seed + 6));
    let grid = gen::grid2d(sn / 100, 100);
    let mut table = Table::new(&["graph", "n", "m", "extra"]);
    for (name, g) in
        [("erdos-renyi", &er), ("barabasi-albert", &ba), ("near-regular", &reg), ("grid", &grid)]
    {
        let e = mis_extra(g, reps, k_fixed, seed);
        table.row(&[&name, &g.num_vertices(), &g.num_edges(), &format!("{e:.1}")]);
    }
    println!("{table}");
}
