//! Supports **Theorem 1** (§3.1): extra iterations of the *generic*
//! framework (Algorithm 2, exercised via greedy coloring) scale as
//! `O(m/n)·poly(k)` — and the clique shows the matching `Θ(nk)` lower bound.
//!
//! Two sweeps:
//!
//! 1. density sweep — fixed `n`, growing `m`: extra iterations per unit of
//!    `m/n` should be roughly constant for fixed `k`;
//! 2. clique sweep — `K_n` for growing `n` at fixed `k`: extra iterations
//!    divided by `n·k` should be roughly constant (tightness).
//!
//! Usage: `theorem1_sweep [--reps R] [--seed S] [--quick]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched_bench::{BenchCli, Table};
use rsched_core::algorithms::coloring::ColoringTasks;
use rsched_core::framework::run_relaxed;
use rsched_core::theory;
use rsched_graph::{gen, CsrGraph, Permutation};
use rsched_queues::relaxed::TopKUniform;

fn coloring_extra(g: &CsrGraph, reps: usize, k: usize, seed: u64) -> f64 {
    let mut total = 0u64;
    for rep in 0..reps {
        let s = seed + rep as u64 * 7919;
        let pi = Permutation::random(g.num_vertices(), &mut StdRng::seed_from_u64(s));
        let sched = TopKUniform::new(k, StdRng::seed_from_u64(s ^ 0xFFFF));
        let (_, stats) = run_relaxed(ColoringTasks::new(g, &pi), &pi, sched);
        total += stats.extra_iterations();
    }
    total as f64 / reps as f64
}

fn main() {
    let Some(cli) = BenchCli::parse(
        "theorem1_sweep",
        "Sweeps Theorem 1's generic waste bound across graph families (incl. the clique).",
        &[
            ("--reps N", "repetitions per configuration"),
            ("--seed S", "base RNG seed"),
            ("--ks LIST", "comma-separated relaxation factors"),
        ],
    ) else {
        return;
    };
    let (args, quick) = (cli.args, cli.quick);
    let reps = args.get_usize("reps", if quick { 2 } else { 5 });
    let seed = args.get_u64("seed", 11);
    let ks = args.get_usize_list("ks", &[4, 16, 64]);

    println!("Theorem 1 sweeps: generic framework (greedy coloring), top-k scheduler\n");

    // --- density sweep ---
    let n = if quick { 2_000 } else { 8_000 };
    let densities: &[usize] = &[1, 4, 16, 64]; // m = d * n
    println!("density sweep (n = {n}; extra should scale ≈ linearly with m/n):");
    let mut header: Vec<String> = vec!["m/n".into()];
    for &k in &ks {
        header.push(format!("extra k={k}"));
        header.push(format!("per-edge k={k}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for &d in densities {
        let m = d * n;
        let g = gen::gnm(n, m, &mut StdRng::seed_from_u64(seed));
        let mut cells = vec![d.to_string()];
        for &k in &ks {
            let extra = coloring_extra(&g, reps, k, seed);
            cells.push(format!("{extra:.1}"));
            cells.push(format!("{:.4}", extra / m as f64));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        table.row(&refs);
    }
    println!("{table}");

    // --- clique sweep (tightness) ---
    let clique_sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256, 512] };
    println!("clique sweep (K_n; extra / (n·k) should be ≈ constant — Θ(nk) tight case):");
    let mut header: Vec<String> = vec!["n".into()];
    for &k in &ks {
        header.push(format!("extra k={k}"));
        header.push(format!("extra/(nk) k={k}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for &cn in clique_sizes {
        let g = gen::complete(cn);
        let mut cells = vec![cn.to_string()];
        for &k in &ks {
            let extra = coloring_extra(&g, reps, k, seed);
            cells.push(format!("{extra:.0}"));
            cells.push(format!("{:.3}", extra / theory::clique_lower_bound(cn, k)));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        table.row(&refs);
    }
    println!("{table}");
    println!("Theorem 1 bound shape with constant 1, for reference:");
    for &k in &ks {
        println!(
            "  k={k}: n + (m/n)·poly(k) with poly(k)={:.0}; conjectured Θ(k) = {}",
            theory::poly_k(k as f64),
            theory::conjectured_extra(k)
        );
    }
}
