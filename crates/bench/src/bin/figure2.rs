//! Regenerates **Figure 2** of the paper: concurrent MIS wall-clock time vs
//! thread count on three `G(n, p)` classes, comparing the relaxed MultiQueue
//! scheduler, the exact FAA-queue scheduler with backoff, and the optimized
//! sequential baseline.
//!
//! Default instance sizes are scaled to this machine (DESIGN.md substitution
//! #1 and #3), preserving each class's average degree regime:
//!
//! * sparse:       10⁶ nodes, 10⁷ edges  (paper: 10⁸ / 10⁹, deg ≈ 20)
//! * small dense:  10⁴ nodes, 10⁷ edges  (paper: 10⁶ / 10⁹, deg ≈ 2000)
//! * large dense:  2·10⁵ nodes, 2·10⁷ edges (paper: 10⁷ / 10¹⁰; degree
//!   reduced to fit memory — the class's role is "many nodes *and* heavy
//!   edge work")
//!
//! `--paper-scale` runs the paper's original sizes instead. Expect tens of
//! GB of CSR per class and minutes of generation time per instance — this
//! mode is for big-memory multi-socket hosts (the paper's machine is a
//! 4-socket, 72-core Xeon), never for CI.
//!
//! Usage: `figure2 [--threads 1,2,4] [--reps R] [--seed S] [--batch-size B]
//! [--shards S] [--json PATH] [--trace PATH] [--metrics [PATH]]
//! [--quick | --paper-scale]`
//!
//! Built with `--features obs`, the relaxed runs feed the live
//! `engine_pop_total` wasted-work counters (extra-iterations readable
//! from a `--metrics` snapshot mid-run) and the final snapshot is
//! asserted to agree exactly with the relaxed executor's end-of-run
//! totals; the exact FAA executor never touches the engine counters.
//!
//! `--json PATH` merges machine-readable medians (per class: sequential
//! baseline, relaxed/exact seconds and extra iterations per thread count)
//! into the shared bench report (see `rsched_bench::report`).
//!
//! `--batch-size B` (default 1) runs the relaxed executor in batched mode:
//! each worker pops `B` tasks per scheduler round-trip and re-inserts the
//! batch's failed deletes in one bulk insert. Batch size 1 is bit-for-bit
//! the scalar executor.
//!
//! `--shards S` (default 1) partitions the relaxed scheduler into `S`
//! hash-routed `BulkMultiQueue` shards (`ShardedScheduler`); each worker
//! pins the shard `worker % S` for its pops and steals from the others only
//! when it runs dry. Sharding multiplies the effective relaxation by `S`
//! (DESIGN.md "Sharding semantics"), so the extra-iterations column grows
//! with `S` while the output stays exactly the sequential MIS.
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched_bench::report::{update_report, Json};
use rsched_bench::{BenchCli, Table};
use rsched_core::algorithms::mis::{greedy_mis, ConcurrentMis};
use rsched_core::framework::{run_concurrent_batched, run_exact_concurrent};
use rsched_core::stats::ConcurrentStats;
use rsched_core::TaskId;
use rsched_graph::{gen, CsrGraph, Permutation};
use rsched_queues::concurrent::BulkMultiQueue;
use rsched_queues::sharded::ShardedScheduler;
use rsched_queues::ConcurrentScheduler;
use std::time::{Duration, Instant};

struct ClassSpec {
    name: &'static str,
    n: usize,
    m: usize,
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn time_sequential(g: &CsrGraph, pi: &Permutation, reps: usize) -> Duration {
    median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let mis = greedy_mis(g, pi);
                std::hint::black_box(&mis);
                t.elapsed()
            })
            .collect(),
    )
}

/// Times `reps` relaxed runs on a fresh scheduler from `make_sched`,
/// asserting each run's output against the sequential MIS. Returns the
/// median wall time and the last run's extra iterations; every rep's pop
/// outcomes are absorbed into `ledger` for the end-of-run reconciliation
/// against the observability counters (only the relaxed executor runs on
/// the worker engine — the exact FAA executor has its own loop).
#[allow(clippy::too_many_arguments)]
fn time_relaxed<S, F>(
    make_sched: F,
    g: &CsrGraph,
    pi: &Permutation,
    expected: &[bool],
    threads: usize,
    reps: usize,
    batch_size: usize,
    ledger: &mut ConcurrentStats,
) -> (Duration, u64)
where
    S: ConcurrentScheduler<TaskId>,
    F: Fn() -> S,
{
    let mut times = Vec::new();
    let mut extra = 0u64;
    for _ in 0..reps {
        let alg = ConcurrentMis::new(g, pi);
        let sched = make_sched();
        let stats = run_concurrent_batched(&alg, pi, &sched, threads, batch_size);
        assert_eq!(alg.into_output(), expected, "relaxed output diverged");
        ledger.processed += stats.processed;
        ledger.wasted += stats.wasted;
        ledger.obsolete += stats.obsolete;
        ledger.empty_pops += stats.empty_pops;
        times.push(stats.elapsed);
        extra = stats.extra_iterations();
    }
    (median(times), extra)
}

fn main() {
    let mut options = vec![
        ("--batch-size B", "tasks popped per scheduler round-trip (default 1)"),
        ("--paper-scale", "the paper's original instance sizes (needs a big-memory host)"),
        ("--reps N", "repetitions per configuration"),
        ("--seed S", "base RNG seed"),
        ("--shards S", "hash-routed scheduler shards with worker affinity (default 1)"),
        ("--threads LIST", "comma-separated thread counts"),
        ("--json PATH", "merge machine-readable medians into the report at PATH"),
    ];
    options.extend_from_slice(&rsched_bench::obs::OPTIONS);
    let Some(cli) = BenchCli::parse(
        "figure2",
        "Regenerates Figure 2: concurrent MIS wall-clock time vs thread count.",
        &options,
    ) else {
        return;
    };
    let args = cli.args;
    let obs_base = rsched_obs::snapshot();
    let mut relaxed_ledger = ConcurrentStats::default();
    let paper_scale = args.has_flag("paper-scale");
    // The explicit flags are mutually exclusive; an ambient
    // RSCHED_BENCH_FAST only wins when --paper-scale was not requested.
    assert!(
        !(args.has_flag("quick") && paper_scale),
        "--quick and --paper-scale are mutually exclusive"
    );
    let quick = cli.quick && !paper_scale;
    let reps = args.get_usize("reps", if quick { 1 } else { 3 });
    let seed = args.get_u64("seed", 7);
    let batch_size = args.get_usize("batch-size", 1);
    assert!(batch_size >= 1, "--batch-size must be positive");
    let shards = args.get_usize("shards", 1);
    assert!(shards >= 1, "--shards must be positive");
    let threads_list = args.get_usize_list("threads", &[1, 2, 4]);

    // Quick mode keeps each class's degree regime while shrinking ~10x;
    // paper-scale mode is the original Figure 2 (ROADMAP "benchmarks at
    // scale"): identical n to the paper, identical m except large-dense
    // (10¹⁰ edges ≈ 80 GB of CSR edges alone; 2·10⁹ keeps the "many nodes
    // *and* heavy edge work" role at deg 200 within a ~16 GB budget).
    let classes = if paper_scale {
        [
            ClassSpec { name: "sparse", n: 100_000_000, m: 1_000_000_000 },
            ClassSpec { name: "small-dense", n: 1_000_000, m: 1_000_000_000 },
            ClassSpec { name: "large-dense", n: 10_000_000, m: 2_000_000_000 },
        ]
    } else if quick {
        [
            ClassSpec { name: "sparse", n: 100_000, m: 1_000_000 },
            ClassSpec { name: "small-dense", n: 3_000, m: 1_500_000 },
            ClassSpec { name: "large-dense", n: 20_000, m: 2_000_000 },
        ]
    } else {
        [
            ClassSpec { name: "sparse", n: 1_000_000, m: 10_000_000 },
            ClassSpec { name: "small-dense", n: 10_000, m: 10_000_000 },
            ClassSpec { name: "large-dense", n: 200_000, m: 20_000_000 },
        ]
    };

    // Note: batch size 1 / shards 1 must leave the output byte-identical to
    // the pre-batching / pre-sharding binary, so the header lines are
    // conditional.
    if batch_size > 1 {
        println!("relaxed executor batch size: {batch_size}");
    }
    if shards > 1 {
        println!("relaxed scheduler shards: {shards}");
    }
    if paper_scale {
        println!("paper-scale instances (expect long generation times and tens of GB of RSS)");
    }
    println!(
        "Figure 2 reproduction: concurrent MIS, {} hardware threads available\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );

    // Machine-readable medians for `--json` (ROADMAP: figure2 still wrote
    // text only): per class, the sequential baseline plus one relaxed /
    // exact median per thread count.
    let mut json_fields: Vec<(String, Json)> = vec![
        ("batch_size".to_string(), Json::Int(batch_size as u64)),
        ("shards".to_string(), Json::Int(shards as u64)),
        ("reps".to_string(), Json::Int(reps as u64)),
    ];

    for spec in &classes {
        let mut rng = StdRng::seed_from_u64(seed);
        eprintln!("generating {} graph (n = {}, m = {}) ...", spec.name, spec.n, spec.m);
        let gen_start = Instant::now();
        let g = gen::gnm(spec.n, spec.m, &mut rng);
        let pi = Permutation::random(spec.n, &mut rng);
        eprintln!(
            "  generated in {:?} ({} MB CSR, avg deg {:.1})",
            gen_start.elapsed(),
            g.memory_bytes() / (1 << 20),
            g.avg_degree()
        );

        let seq = time_sequential(&g, &pi, reps);
        json_fields.push((format!("{}/sequential_s", spec.name), Json::Num(seq.as_secs_f64())));
        let expected = greedy_mis(&g, &pi);
        println!(
            "class {}: n = {}, m = {}, sequential baseline = {:.3}s",
            spec.name,
            spec.n,
            spec.m,
            seq.as_secs_f64()
        );

        let mut table = Table::new(&[
            "threads",
            "relaxed(s)",
            "exact(s)",
            "relax-speedup",
            "exact-speedup",
            "relax-extra",
            "exact-waits",
        ]);
        for &threads in &threads_list {
            // Relaxed MultiQueue (4 queues per thread, as in the paper);
            // internal queues are prefilled sorted runs so pops are O(1)
            // head reads, matching the paper's list-based queues. With
            // --shards the task space is hash-partitioned into `shards`
            // such MultiQueues, each worker pinning shard `worker % shards`
            // (shard construction runs one thread per shard — the parallel
            // bulk load that dominates setup at paper scale).
            let entries = || (0..spec.n as u32).map(|v| (pi.label(v) as u64, v));
            let (rt, relaxed_extra) = if shards == 1 {
                time_relaxed(
                    || BulkMultiQueue::prefilled_for_threads(threads, entries()),
                    &g,
                    &pi,
                    &expected,
                    threads,
                    reps,
                    batch_size,
                    &mut relaxed_ledger,
                )
            } else {
                time_relaxed(
                    || {
                        ShardedScheduler::prefilled_with(shards, entries(), |_, group| {
                            BulkMultiQueue::prefilled_for_threads(threads.div_ceil(shards), group)
                        })
                    },
                    &g,
                    &pi,
                    &expected,
                    threads,
                    reps,
                    batch_size,
                    &mut relaxed_ledger,
                )
            };
            // Exact FAA queue with backoff.
            let mut exact_times = Vec::new();
            let mut exact_waits = 0u64;
            for _ in 0..reps {
                let alg = ConcurrentMis::new(&g, &pi);
                let stats = run_exact_concurrent(&alg, &pi, threads);
                assert_eq!(alg.into_output(), expected, "exact output diverged");
                exact_times.push(stats.elapsed);
                exact_waits = stats.wasted;
            }
            let rt = rt.as_secs_f64();
            let et = median(exact_times).as_secs_f64();
            json_fields.push((format!("{}/t{threads}/relaxed_s", spec.name), Json::Num(rt)));
            json_fields.push((format!("{}/t{threads}/exact_s", spec.name), Json::Num(et)));
            json_fields.push((
                format!("{}/t{threads}/relaxed_extra", spec.name),
                Json::Int(relaxed_extra),
            ));
            table.row(&[
                &threads,
                &format!("{rt:.3}"),
                &format!("{et:.3}"),
                &format!("{:.2}x", seq.as_secs_f64() / rt),
                &format!("{:.2}x", seq.as_secs_f64() / et),
                &relaxed_extra,
                &exact_waits,
            ]);
        }
        println!("{table}");
    }
    println!("Shape checks (paper): relaxed ≥ exact throughout; relaxed 1-thread ≈ sequential;");
    println!("exact catches up when per-task edge work dominates (small-dense class).");

    if rsched_obs::ENABLED {
        // Only relaxed runs go through the worker engine, so the engine
        // counter deltas must land exactly on the relaxed executor's
        // accumulated totals — the exact FAA executor never touches them.
        let snap = rsched_obs::snapshot();
        let d = |name: &str| snap.counter_delta(&obs_base, name);
        assert_eq!(d(r#"engine_pop_total{outcome="success"}"#), relaxed_ledger.processed);
        assert_eq!(d(r#"engine_pop_total{outcome="blocked"}"#), relaxed_ledger.wasted);
        assert_eq!(d(r#"engine_pop_total{outcome="obsolete"}"#), relaxed_ledger.obsolete);
        assert_eq!(d(r#"engine_pop_total{outcome="empty"}"#), relaxed_ledger.empty_pops);
        println!(
            "\nobs: engine_pop_total counters reconcile with relaxed-run totals \
             ({} processed, {} wasted, {} obsolete)",
            relaxed_ledger.processed, relaxed_ledger.wasted, relaxed_ledger.obsolete
        );
    }

    if let Some(path) = args.get_str("json") {
        if let Some(metrics) = rsched_bench::obs::metrics_json(&obs_base) {
            json_fields.push(("metrics".to_string(), metrics));
        }
        let path = std::path::Path::new(path);
        update_report(path, "figure2", &Json::Obj(json_fields));
        println!("json medians merged into {}", path.display());
    }
    rsched_bench::obs::emit(&args);
}
