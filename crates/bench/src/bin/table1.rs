//! Regenerates **Table 1** of the paper: extra iterations (failed deletes)
//! of relaxed-scheduler MIS (Algorithm 4) on `G(n, m)` random graphs.
//!
//! Paper parameters: `n ∈ {10³, 10⁴}`, `m ∈ {10⁴, 3·10⁴, 10⁵}`,
//! `k ∈ {4, 8, 16, 32, 64}`, averaged over runs, with a MultiQueue-based
//! relaxed scheduler. We report the simulated MultiQueue with `q = k` queues
//! (the paper's scheduler; `k = O(q)` per the paper's reference \[2\]) and,
//! for reference, the canonical top-k uniform scheduler of the analysis.
//!
//! Usage: `table1 [--reps R] [--seed S] [--ns 1000,10000]
//! [--ms 10000,30000,100000] [--ks 4,8,16,32,64] [--quick]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched_bench::table1::extra_iterations;
use rsched_bench::{BenchCli, Table};
use rsched_queues::relaxed::{SimMultiQueue, TopKUniform};

fn main() {
    let Some(cli) = BenchCli::parse(
        "table1",
        "Regenerates Table 1: MIS extra iterations vs k, n, m under TopKUniform.",
        &[
            ("--reps N", "repetitions per configuration"),
            ("--seed S", "base RNG seed"),
            ("--ns LIST", "comma-separated vertex counts"),
            ("--ms LIST", "comma-separated edge counts"),
            ("--ks LIST", "comma-separated relaxation factors"),
        ],
    ) else {
        return;
    };
    let (args, quick) = (cli.args, cli.quick);
    let reps = args.get_usize("reps", if quick { 2 } else { 5 });
    let seed = args.get_u64("seed", 42);
    let ns = args.get_usize_list("ns", if quick { &[1_000] } else { &[1_000, 10_000] });
    let ms = args
        .get_usize_list("ms", if quick { &[10_000, 30_000] } else { &[10_000, 30_000, 100_000] });
    let ks = args.get_usize_list("ks", &[4, 8, 16, 32, 64]);

    println!("Table 1 reproduction: MIS extra iterations (averaged over {reps} runs)\n");

    for (name, which) in [("simulated MultiQueue (q = k)", 0usize), ("canonical top-k uniform", 1)]
    {
        println!("scheduler: {name}");
        let mut header: Vec<String> = vec!["|V|".into(), "|E|".into()];
        header.extend(ks.iter().map(|k| format!("k={k}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);
        for &n in &ns {
            for &m in &ms {
                if m > n * (n - 1) / 2 {
                    continue;
                }
                let mut cells: Vec<String> = vec![n.to_string(), m.to_string()];
                for &k in &ks {
                    let avg = if which == 0 {
                        extra_iterations(n, m, reps, seed, |s| {
                            SimMultiQueue::new(k, StdRng::seed_from_u64(s))
                        })
                    } else {
                        extra_iterations(n, m, reps, seed, |s| {
                            TopKUniform::new(k, StdRng::seed_from_u64(s))
                        })
                    };
                    cells.push(format!("{avg:.1}"));
                }
                let refs: Vec<&dyn std::fmt::Display> =
                    cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
                table.row(&refs);
            }
        }
        println!("{table}");
    }

    println!("paper reference (MultiQueue, |V|=1000 row 1): 12.8  56.8  148.8  308.6  583.0");
    println!(
        "Shape checks: values grow polynomially in k and stay flat in |V| and |E| (Theorem 2)."
    );
}
