//! `rsched-lint` — source-level atomics-hygiene lint, run as a deny step in
//! CI (`cargo run -p rsched-lint`). Text-based on purpose: no syn, no
//! regex crate, no network — it must work in the offline container and
//! stay trivially auditable.
//!
//! Rules:
//!
//! * `unsafe-comment` — every `unsafe` keyword in code must carry a
//!   `// SAFETY:` comment (or a `# Safety` doc section) immediately above
//!   it (attributes and further comment lines may intervene) or trailing on
//!   the same line.
//! * `seqcst-fence` — every `fence(…SeqCst…)` call must carry a
//!   justification comment: a trailing comment or a comment block
//!   immediately above. SeqCst fences are the load-bearing agreements of
//!   the epoch and backpressure protocols; an unexplained one is either
//!   wrong or about to be "optimized" by someone who can't see why it's
//!   right.
//! * `facade-atomics` — crates ported onto the `rsched_sync` façade
//!   (`crates/queues/src` — including the `reclaim` backends, whose
//!   version counters are exactly what the model checker must see —
//!   `crates/core/src/service`, `shims/crossbeam/src`, and
//!   `crates/obs/src`, whose probes sit on those same hot paths) must not
//!   name `std::sync::atomic` / `core::sync::atomic` directly, otherwise
//!   the model checker silently loses sight of those accesses.
//! * `obs-cache-padded` — in `crates/obs/src`, a boxed slice of atomics
//!   (`Box<[…Atomic…]>`) must be `CachePadded`: those slices are the
//!   per-worker counter cells, and an unpadded cell array puts every
//!   worker's hot increments on the same cache line — the false sharing
//!   the striped design exists to avoid.
//!
//! Escape hatch: a `lint:allow(<rule>)` comment anywhere on the flagged
//! line suppresses that rule for the line.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories whose `.rs` files are scanned, relative to the root.
const SCAN_DIRS: &[&str] = &["crates", "shims", "src", "tests", "examples", "benches"];

/// File sets that must import atomics via `rsched_sync` only. The façade
/// crate itself (`shims/model`) is the one place allowed to touch std
/// atomics. `crates/queues/src` covers the whole crate including
/// `reclaim/` — the VBR version counters live there and model-checked
/// suites (`model_vbr.rs`) depend on every one of those accesses going
/// through the façade; tests below pin that the nested paths stay scoped.
const FACADE_PORTED: &[&str] =
    &["crates/queues/src", "crates/core/src/service", "shims/crossbeam/src", "crates/obs/src"];

/// File set where boxed atomic slices must be cache-padded (the metrics
/// registry's per-worker counter cells).
const OBS_PADDED_SCOPE: &str = "crates/obs/src";

const RULE_UNSAFE: &str = "unsafe-comment";
const RULE_FENCE: &str = "seqcst-fence";
const RULE_FACADE: &str = "facade-atomics";
const RULE_OBS_PADDED: &str = "obs-cache-padded";

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--root needs a path argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: rsched-lint [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for f in &files {
        let Ok(text) = fs::read_to_string(f) else { continue };
        scanned += 1;
        let rel = f.strip_prefix(&root).unwrap_or(f).to_string_lossy().replace('\\', "/");
        lint_file(&rel, &text, &mut violations);
    }

    if violations.is_empty() {
        println!("rsched-lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!("rsched-lint: {} violation(s) in {scanned} files", violations.len());
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Split a source line into (code, comment) with string contents blanked
/// out of the code part, tracking `/* */` block comments across lines.
/// Single-line approximation: string state does not persist across lines.
fn split_code_comment(line: &str, in_block: &mut bool) -> (String, String) {
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if *in_block {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                *in_block = false;
            }
            continue;
        }
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            code.push(' ');
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                code.push(' ');
            }
            '/' if chars.peek() == Some(&'/') => {
                comment.push('/');
                comment.extend(chars);
                break;
            }
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                *in_block = true;
            }
            _ => code.push(c),
        }
    }
    (code, comment)
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True if `needle` occurs in `hay` delimited by non-word characters.
fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = hay[..at].chars().next_back().map(|c| !is_word_char(c)).unwrap_or(true);
        let after_ok =
            hay[at + needle.len()..].chars().next().map(|c| !is_word_char(c)).unwrap_or(true);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Does the contiguous block of comment/attribute lines directly above
/// line `i` (0-based) satisfy `pred`? Attributes are skipped; blank lines
/// break adjacency.
fn comment_block_above(lines: &[&str], i: usize, pred: impl Fn(&str) -> bool) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim_start();
        if t.starts_with("//") {
            if pred(t) {
                return true;
            }
        } else if t.starts_with("#[")
            || t.starts_with("#!")
            || t.ends_with(']') && t.starts_with(')')
        {
            // attribute (possibly the tail of a multi-line one): keep going
        } else {
            return false;
        }
    }
    false
}

fn allowed(line: &str, rule: &str) -> bool {
    line.contains(&format!("lint:allow({rule})"))
}

fn lint_file(rel: &str, text: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let facade_scoped = FACADE_PORTED.iter().any(|p| rel.starts_with(p));
    let obs_padded_scoped = rel.starts_with(OBS_PADDED_SCOPE);

    let mut in_block = false;
    let mut split: Vec<(String, String)> = Vec::with_capacity(lines.len());
    for l in &lines {
        split.push(split_code_comment(l, &mut in_block));
    }

    for (i, (code, trailing)) in split.iter().enumerate() {
        let lineno = i + 1;
        let raw = lines[i];

        // Rule: unsafe-comment. `unsafe fn(` / `unsafe extern` with no
        // name is a function-pointer *type*, not an unsafe operation.
        let code_sans_fn_ptr_types = code.replace("unsafe fn(", "").replace("unsafe extern", "");
        if has_word(&code_sans_fn_ptr_types, "unsafe") && !allowed(raw, RULE_UNSAFE) {
            let safety = |s: &str| s.contains("SAFETY") || s.contains("# Safety");
            let ok = safety(trailing) || comment_block_above(&lines, i, safety);
            if !ok {
                out.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: RULE_UNSAFE,
                    message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) above or trailing".into(),
                });
            }
        }

        // Rule: seqcst-fence
        if has_word(code, "fence") && code.contains("fence(") && !allowed(raw, RULE_FENCE) {
            let next_code = split.get(i + 1).map(|(c, _)| c.as_str()).unwrap_or("");
            let seqcst_here =
                code.contains("SeqCst") || (!code.contains(')') && next_code.contains("SeqCst"));
            if seqcst_here {
                let ok = !trailing.trim_start_matches('/').trim().is_empty()
                    || comment_block_above(&lines, i, |s| {
                        !s.trim_start_matches('/').trim().is_empty()
                    });
                if !ok {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: lineno,
                        rule: RULE_FENCE,
                        message: "SeqCst fence without a justification comment".into(),
                    });
                }
            }
        }

        // Rule: facade-atomics
        if facade_scoped
            && (code.contains("std::sync::atomic") || code.contains("core::sync::atomic"))
            && !allowed(raw, RULE_FACADE)
        {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: RULE_FACADE,
                message: "façade-ported file must import atomics via `rsched_sync::atomic`".into(),
            });
        }

        // Rule: obs-cache-padded
        if obs_padded_scoped
            && code.contains("Box<[")
            && code.contains("Atomic")
            && !code.contains("CachePadded")
            && !allowed(raw, RULE_OBS_PADDED)
        {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: RULE_OBS_PADDED,
                message: "boxed atomic slice in the obs crate must be `CachePadded` (counter cells share cache lines otherwise)".into(),
            });
        }
    }
}

// Keep the Violation Display-ish formatting in one place for tests.
#[allow(dead_code)]
fn render(v: &Violation) -> String {
    let mut s = String::new();
    let _ = write!(s, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        lint_file(rel, src, &mut out);
        out
    }

    #[test]
    fn unsafe_without_comment_flagged() {
        let v = run("crates/x/src/a.rs", "fn f() {\n    let p = unsafe { *q };\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNSAFE);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_above_ok() {
        let src = "fn f() {\n    // SAFETY: q is valid for reads.\n    let p = unsafe { *q };\n}\n";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_with_trailing_safety_ok() {
        let src = "unsafe impl Send for X {} // SAFETY: X owns its pointer.\n";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_with_safety_doc_section_ok() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must hold the lock.\n#[inline]\npub unsafe fn g() {}\n";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_string_ignored() {
        let src = "// this mentions unsafe code\nfn f() { let s = \"unsafe\"; }\n";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_pointer_type_ignored() {
        let src = "struct D {\n    ptr: usize,\n    drop_fn: unsafe fn(usize),\n}\n";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn seqcst_fence_without_comment_flagged() {
        let src = "fn f() {\n    fence(Ordering::SeqCst);\n}\n";
        let v = run("a.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_FENCE);
    }

    #[test]
    fn seqcst_fence_with_comment_ok() {
        let src = "fn f() {\n    // Pairs with the fence in try_advance (SB pattern).\n    fence(Ordering::SeqCst);\n}\n";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn seqcst_fence_multiline_flagged() {
        let src = "fn f() {\n    atomic::fence(\n        Ordering::SeqCst,\n    );\n}\n";
        let v = run("a.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_FENCE);
    }

    #[test]
    fn non_seqcst_fence_ignored() {
        assert!(run("a.rs", "fn f() { fence(Ordering::Acquire); }\n").is_empty());
    }

    #[test]
    fn helper_named_like_fence_ignored() {
        assert!(run("a.rs", "fn f() { capacity_fence(); }\n").is_empty());
    }

    #[test]
    fn facade_rule_scoped_to_ported_sets() {
        let src = "use std::sync::atomic::AtomicUsize;\n";
        assert_eq!(run("crates/queues/src/lock.rs", src).len(), 1);
        assert_eq!(run("crates/core/src/service/mod.rs", src).len(), 1);
        assert_eq!(run("shims/crossbeam/src/epoch.rs", src).len(), 1);
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("shims/model/src/atomics.rs", src).is_empty());
    }

    #[test]
    fn facade_rule_covers_reclamation_module() {
        // The reclamation backends must stay façade-ported: a bypassed
        // atomic here is a version counter the model checker cannot see.
        let src = "use core::sync::atomic::AtomicU64;\n";
        for file in [
            "crates/queues/src/reclaim/mod.rs",
            "crates/queues/src/reclaim/ebr.rs",
            "crates/queues/src/reclaim/vbr.rs",
        ] {
            let v = run(file, src);
            assert_eq!(v.len(), 1, "{file} must be façade-scoped");
            assert_eq!(v[0].rule, RULE_FACADE);
        }
    }

    #[test]
    fn unsafe_in_reclamation_module_needs_safety_comment() {
        let src = "fn f() {\n    let x = unsafe { ptr.read() };\n}\n";
        let v = run("crates/queues/src/reclaim/vbr.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNSAFE);
    }

    #[test]
    fn facade_mention_in_comment_ok() {
        let src = "// swap back to std::sync::atomic once vendored\nuse rsched_sync::atomic::AtomicUsize;\n";
        assert!(run("crates/queues/src/lock.rs", src).is_empty());
    }

    #[test]
    fn facade_rule_covers_obs_crate() {
        // Probe increments sit on the queue/engine hot paths; an atomic
        // bypassing the façade there is invisible to the model checker.
        let src = "use std::sync::atomic::AtomicU64;\n";
        let v = run("crates/obs/src/metrics.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_FACADE);
    }

    #[test]
    fn unpadded_atomic_cell_slice_flagged() {
        let src = "struct Cells {\n    cells: Box<[AtomicU64]>,\n}\n";
        let v = run("crates/obs/src/metrics.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_OBS_PADDED);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cache_padded_cell_slice_ok() {
        let src = "struct Cells {\n    cells: Box<[CachePadded<AtomicU64>]>,\n}\n";
        assert!(run("crates/obs/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn unpadded_cell_slice_outside_obs_ignored() {
        let src = "struct Cells {\n    cells: Box<[AtomicU64]>,\n}\n";
        assert!(run("crates/queues/src/lock.rs", src).is_empty());
    }

    #[test]
    fn obs_cache_padded_allow_escape_hatch() {
        // The log-histogram bucket array opts out deliberately: 720
        // buckets at one cache line each would cost ~90 KiB per histogram.
        let src = "struct H {\n    buckets: Box<[AtomicU64]>, // lint:allow(obs-cache-padded) bucket array\n}\n";
        assert!(run("crates/obs/src/hist.rs", src).is_empty());
    }

    #[test]
    fn allow_escape_hatch() {
        let src = "fn f() { let p = unsafe { *q }; } // lint:allow(unsafe-comment)\n";
        assert!(run("a.rs", src).is_empty());
    }

    #[test]
    fn block_comments_stripped() {
        let src = "/* unsafe in a block comment\n   fence(SeqCst) too */\nfn f() {}\n";
        assert!(run("a.rs", src).is_empty());
    }
}
