//! Feature-off mirror of the live API: every handle is a ZST, every probe
//! an `#[inline(always)]` empty body, so instrumented code compiles to
//! exactly what it was before instrumentation (pinned by
//! `tests/zero_cost.rs`). Method and function signatures match
//! `metrics.rs`/`trace.rs` one-for-one — call sites are oblivious to which
//! variant they compiled against.

use crate::Snapshot;

/// No-op counter handle (ZST).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter;

impl Counter {
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn inc(&self) {}
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op gauge handle (ZST).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge;

impl Gauge {
    #[inline(always)]
    pub fn add(&self, _n: i64) {}
    #[inline(always)]
    pub fn sub(&self, _n: i64) {}
    #[inline(always)]
    pub fn set(&self, _n: i64) {}
    pub fn value(&self) -> i64 {
        0
    }
}

/// No-op histogram handle (ZST).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram;

impl Histogram {
    #[inline(always)]
    pub fn record(&self, _value: u64) {}
}

/// No-op span guard (ZST, no `Drop`).
#[derive(Debug, Default)]
#[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
pub struct Span;

impl Span {
    #[inline(always)]
    pub fn enter(_name_id: u32) -> Span {
        Span
    }
}

#[inline(always)]
pub fn counter(_name: &str) -> Counter {
    Counter
}

#[inline(always)]
pub fn gauge(_name: &str) -> Gauge {
    Gauge
}

#[inline(always)]
pub fn histogram(_name: &str) -> Histogram {
    Histogram
}

#[inline(always)]
pub fn intern(_name: &str) -> u32 {
    0
}

#[inline(always)]
pub fn instant_event(_name_id: u32) {}

/// Always 0 with probes compiled out — `end - start` timing code folds away.
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

/// Always `false`: the compile-time gate subsumes the runtime one.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// An empty snapshot: nothing is ever registered.
#[inline(always)]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// The empty string: callers treat it as "tracing compiled out".
#[inline(always)]
pub fn chrome_trace_json() -> String {
    String::new()
}
