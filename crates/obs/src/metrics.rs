//! Live metrics: striped counters, gauges, and the named registry.
//!
//! Compiled only with the `obs` feature; `noop.rs` mirrors every public
//! item as a ZST no-op. Registration (name lookup) takes a mutex but is
//! cold — the `counter!`/`gauge!`/`hist!` macros cache the returned handle
//! in a per-call-site `OnceLock`, so the hot path is a `Relaxed` fetch_add
//! on a cache-padded cell.

use crate::hist::LogHistogram;
use crate::{HistSummary, Snapshot};
use crossbeam::utils::CachePadded;
use rsched_sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of independent counter cells per counter. Each thread hashes to
/// one stripe (assigned round-robin at first touch), so with up to 32
/// concurrent recorders no two workers contend on a cache line.
const STRIPES: usize = 32;

/// Backing storage of a [`Counter`]: cache-padded per-worker cells summed
/// on read.
pub(crate) struct CounterCells {
    cells: Box<[CachePadded<AtomicU64>]>,
}

impl CounterCells {
    fn new() -> Self {
        CounterCells { cells: (0..STRIPES).map(|_| CachePadded::new(AtomicU64::new(0))).collect() }
    }

    fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Relaxed)).sum()
    }
}

/// The calling thread's stripe, assigned round-robin on first use.
#[inline]
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// A monotone event counter. Copy handle; obtain via [`crate::counter`] or
/// the caching [`counter!`](crate::counter) macro.
#[derive(Clone, Copy)]
pub struct Counter(pub(crate) &'static CounterCells);

impl Counter {
    /// Adds `n`. Wait-free: one `Relaxed` fetch_add on this thread's cell.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.cells[stripe()].fetch_add(n, Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total (sum over stripes; racy snapshot while writers run).
    pub fn value(&self) -> u64 {
        self.0.value()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// Backing storage of a [`Gauge`]. A single padded cell: gauges track
/// small signed levels (queue depth, shard load) where the read side wants
/// an exact instantaneous value, so striping would be counterproductive.
pub(crate) struct GaugeCell {
    // `AtomicIsize`: the model façade deliberately exports no AtomicI64.
    cell: CachePadded<AtomicIsize>,
}

/// An instantaneous signed level. Copy handle; obtain via [`crate::gauge`]
/// or the caching [`gauge!`](crate::gauge) macro. Named gauges are global:
/// two call sites registering the same name share the cell.
#[derive(Clone, Copy)]
pub struct Gauge(pub(crate) &'static GaugeCell);

impl Gauge {
    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.0.cell.fetch_add(n as isize, Relaxed);
        }
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, n: i64) {
        if enabled() {
            self.0.cell.store(n as isize, Relaxed);
        }
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.0.cell.load(Relaxed) as i64
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// A registered log-bucketed histogram. Copy handle; obtain via
/// [`crate::histogram`] or the caching [`hist!`](crate::hist) macro.
#[derive(Clone, Copy)]
pub struct Histogram(pub(crate) &'static LogHistogram);

impl Histogram {
    /// Records one sample (no-op while probes are disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if enabled() {
            self.0.record(value);
        }
    }

    /// The underlying histogram, for direct quantile queries.
    pub fn inner(&self) -> &'static LogHistogram {
        self.0
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Histogram").field(&self.0.count()).finish()
    }
}

/// The global name → instrument registry. Maps are keyed by the full
/// Prometheus-style name (labels embedded in the string); instruments are
/// leaked so handles are `'static` and hot paths never reacquire the lock.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static CounterCells>>,
    gauges: Mutex<BTreeMap<String, &'static GaugeCell>>,
    hists: Mutex<BTreeMap<String, &'static LogHistogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Runtime kill-switch (compile-time gating is the `obs` feature; this is
/// the coarser in-process toggle). Probes check it with a `Relaxed` load.
static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether probes currently record. Always `false` when the `obs` feature
/// is off (that variant lives in `noop.rs` and is `const`-foldable).
#[inline]
pub fn enabled() -> bool {
    RUNTIME_ENABLED.load(Relaxed)
}

/// Turns all probes on or off at runtime (they start on).
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on, Relaxed);
}

/// Registers (or looks up) the counter `name`. Cold path; cache the handle.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().unwrap();
    if let Some(c) = map.get(name) {
        return Counter(c);
    }
    let cells: &'static CounterCells = Box::leak(Box::new(CounterCells::new()));
    map.insert(name.to_owned(), cells);
    Counter(cells)
}

/// Registers (or looks up) the gauge `name`. Cold path; cache the handle.
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().unwrap();
    if let Some(g) = map.get(name) {
        return Gauge(g);
    }
    let cell: &'static GaugeCell =
        Box::leak(Box::new(GaugeCell { cell: CachePadded::new(AtomicIsize::new(0)) }));
    map.insert(name.to_owned(), cell);
    Gauge(cell)
}

/// Registers (or looks up) the histogram `name`. Cold path; cache the
/// handle.
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry().hists.lock().unwrap();
    if let Some(h) = map.get(name) {
        return Histogram(h);
    }
    let hist: &'static LogHistogram = Box::leak(Box::new(LogHistogram::new()));
    map.insert(name.to_owned(), hist);
    Histogram(hist)
}

/// A point-in-time copy of every registered instrument, sorted by name.
/// Counters/gauges only ever accumulate globally, so callers comparing a
/// single run take a snapshot before and after and diff (see
/// [`Snapshot::counter_delta`](crate::Snapshot::counter_delta)).
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters =
        reg.counters.lock().unwrap().iter().map(|(n, c)| (n.clone(), c.value())).collect();
    let gauges = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(n, g)| (n.clone(), g.cell.load(Relaxed) as i64))
        .collect();
    let hists = reg
        .hists
        .lock()
        .unwrap()
        .iter()
        .map(|(n, h)| {
            let (p50, p95, p99) = h.percentiles();
            (n.clone(), HistSummary { count: h.count(), sum: h.sum(), p50, p95, p99 })
        })
        .collect();
    Snapshot { counters, gauges, hists }
}
