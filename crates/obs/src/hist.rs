//! Log-bucketed atomic histogram.
//!
//! Buckets follow the HdrHistogram-style scheme: values below 16 get exact
//! unit buckets; above that, each power-of-two decade is split into
//! `2^SUB_BITS = 16` equal sub-buckets, so any recorded value lands in a
//! bucket whose width is at most 1/16 of its lower bound. Quantile queries
//! therefore carry a bounded *relative* error of `< 1/16` (≈ 6.25%) — tight
//! enough to replace exact sorted-Vec percentiles in the bench reports
//! (pinned by `crates/bench/tests/hist_percentiles.rs`).
//!
//! `record` is wait-free: one index computation (a couple of shifts off
//! `leading_zeros`) plus two `Relaxed` `fetch_add`s. Reads (`count`, `sum`,
//! `quantile`) are racy snapshots, which is fine for monitoring: totals are
//! only compared against ledgers *after* the recording threads have joined.
//!
//! This type is compiled unconditionally — unlike the rest of the crate it
//! is also a plain data-structure utility (bench percentile math) and must
//! exist even when the `obs` feature is off.

use rsched_sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each power-of-two range is split 2^4 = 16 ways.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16

/// Values are clamped to `2^48 - 1` (~3.2 days in nanoseconds) — far above
/// anything the probes record, so the top bucket is a pure safety net.
const CLAMP_BITS: u32 = 48;

/// Bucket count: 16 exact unit buckets for `v < 16`, then 16 sub-buckets
/// for each of the `CLAMP_BITS - SUB_BITS = 44` power-of-two decades.
pub const NBUCKETS: usize = SUB + (CLAMP_BITS - SUB_BITS) as usize * SUB; // 720

/// A fixed-shape, lock-free, log-bucketed histogram of `u64` samples.
pub struct LogHistogram {
    // Buckets are read-mostly-cold and written at scattered indices; padding
    // 720 cells would cost ~90 KiB per histogram for no measured gain, so
    // this is the one sanctioned unpadded atomic array in the crate.
    buckets: Box<[AtomicU64]>, // lint:allow(obs-cache-padded) 720 buckets; padding would cost ~90 KiB each
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// The bucket index for `value` (after clamping).
#[inline]
fn bucket_index(value: u64) -> usize {
    let v = value.min((1u64 << CLAMP_BITS) - 1);
    if v < SUB as u64 {
        return v as usize;
    }
    // `v >= 16`, so the most significant bit is at position >= SUB_BITS.
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    // Decade `msb` starts at index `SUB + (msb - SUB_BITS) * SUB`; within
    // it, the sub-bucket is the SUB_BITS bits below the MSB. For the first
    // decade (msb == SUB_BITS) this is continuous with the unit buckets:
    // v == 16 maps to index 16.
    (SUB as u32 + (msb - SUB_BITS) * SUB as u32 + ((v >> shift) as u32 & (SUB as u32 - 1))) as usize
}

/// The largest value mapping to bucket `idx` (inverse of [`bucket_index`]).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let decade = ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    // Lower bound of the bucket plus (width - 1).
    let lo = (SUB as u64 + sub) << decade;
    lo + ((1u64 << decade) - 1)
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free; `Relaxed` — totals become reliable
    /// once the recording threads are joined.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all recorded samples (pre-clamp values contribute clamped).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Nearest-rank quantile: the upper bound of the bucket containing the
    /// `ceil(q * count)`-th smallest sample (0 if empty). Overestimates the
    /// exact sorted percentile by at most one bucket width (< 1/16 relative).
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx);
            }
        }
        bucket_upper(NBUCKETS - 1)
    }

    /// `(p50, p95, p99)` in one pass — the shape the bench tables print.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

#[cfg(all(test, not(rsched_model)))]
mod tests {
    use super::*;

    #[test]
    fn index_is_continuous_and_monotone() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "gap at v={v}: {prev} -> {idx}");
            prev = idx;
        }
        // Spot the unit/decade seam.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
    }

    #[test]
    fn upper_is_inverse_of_index() {
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 123_456, u32::MAX as u64, 1 << 47] {
            let idx = bucket_index(v);
            let hi = bucket_upper(idx);
            assert!(hi >= v, "upper({idx}) = {hi} < v = {v}");
            assert_eq!(bucket_index(hi), idx, "upper bound left its own bucket (v={v})");
            if hi + 1 < (1 << CLAMP_BITS) {
                assert_eq!(bucket_index(hi + 1), idx + 1);
            }
        }
    }

    #[test]
    fn bounded_relative_error() {
        let h = LogHistogram::new();
        for v in [1u64, 100, 10_000, 1_000_000] {
            h.record(v);
            let q = h.quantile(1.0);
            assert!(q >= v);
            assert!((q - v) as f64 <= (v as f64 / 16.0).max(1.0), "v={v} q={q}");
            // Drain by constructing fresh below (records accumulate).
        }
    }

    #[test]
    fn quantiles_match_exact_on_uniform() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let (p50, p95, p99) = h.percentiles();
        for (q, exact) in [(p50, 500u64), (p95, 950), (p99, 990)] {
            assert!(q >= exact && (q - exact) as f64 <= exact as f64 / 16.0, "q={q} exact={exact}");
        }
    }

    #[test]
    fn clamp_and_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) >= (1 << 47));
    }
}
