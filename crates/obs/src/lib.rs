//! # rsched-obs — runtime observability for the relaxed-scheduler stack
//!
//! Everything the paper reasons about offline — rank error (Definition 1),
//! wasted work, queue occupancy — plus the engineering quantities around it
//! (pop outcomes, batch sizes, service times, reclamation traffic) becomes
//! observable *while the system runs*:
//!
//! * **Metrics** — a lock-free named registry of [`Counter`]s (cache-padded
//!   per-worker cells summed on read), [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s; exported as a [`Snapshot`] with a Prometheus-style
//!   [`Snapshot::text`] rendering.
//! * **Tracing** — per-thread fixed-capacity ring buffers of span
//!   enter/exit and point events, no allocation on the hot path, flushed on
//!   demand by [`chrome_trace_json`] (load the file in `chrome://tracing`
//!   or Perfetto).
//! * **Compile-time gating** — in the style of the `rsched_sync` model
//!   façade: with the `obs` feature *off* (the default), every probe macro
//!   expands to a ZST no-op pinned by `tests/zero_cost.rs`; instrumented
//!   crates are bit-for-bit the uninstrumented ones. With it on, a runtime
//!   kill-switch ([`set_enabled`]) remains.
//!
//! ## Probing code
//!
//! ```
//! use rsched_obs as obs;
//!
//! fn pop_one(worked: bool) {
//!     let _span = obs::span!("pop_one");               // timed region
//!     if worked {
//!         obs::counter!(r#"pops_total{outcome="success"}"#).inc();
//!     }
//!     obs::hist!("pop_batch_size").record(1);
//! }
//!
//! pop_one(true);
//! let snap = obs::snapshot();
//! // Feature off: the snapshot is empty and the probes cost nothing.
//! assert_eq!(snap.is_empty(), !obs::ENABLED);
//! ```
//!
//! The macros cache their registry handle in a per-call-site `OnceLock`, so
//! steady-state cost is one `Relaxed` load plus one `Relaxed` `fetch_add`.
//! Counters only accumulate (the registry is process-global); anything
//! comparing "this run" takes a snapshot before and after and uses
//! [`Snapshot::counter_delta`].

pub mod hist;

#[cfg(feature = "obs")]
mod metrics;
#[cfg(feature = "obs")]
mod trace;

#[cfg(feature = "obs")]
pub use metrics::{
    counter, enabled, gauge, histogram, set_enabled, snapshot, Counter, Gauge, Histogram,
};
#[cfg(feature = "obs")]
pub use trace::{chrome_trace_json, instant_event, intern, now_ns, Span};

#[cfg(not(feature = "obs"))]
mod noop;

#[cfg(not(feature = "obs"))]
pub use noop::{
    chrome_trace_json, counter, enabled, gauge, histogram, instant_event, intern, now_ns,
    set_enabled, snapshot, Counter, Gauge, Histogram, Span,
};

/// `true` iff the `obs` feature compiled the live probes in. Lets callers
/// `const`-gate work that only makes sense with real metrics (e.g. building
/// per-shard gauge names) without `cfg` in downstream crates.
#[cfg(feature = "obs")]
pub const ENABLED: bool = true;
/// `true` iff the `obs` feature compiled the live probes in.
#[cfg(not(feature = "obs"))]
pub const ENABLED: bool = false;

/// Not public API: re-exports used by the probe macros' expansions.
#[doc(hidden)]
pub mod __private {
    pub use std::sync::OnceLock;
}

/// Summary statistics of one histogram inside a [`Snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// 50th/95th/99th percentile (bucket upper bounds, < 1/16 relative
    /// error — see [`hist::LogHistogram`]).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of the whole metrics registry, sorted by name.
/// Always available (empty when the `obs` feature is off).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every registered histogram.
    pub hists: Vec<(String, HistSummary)>,
}

impl Snapshot {
    /// Whether nothing is registered (always true with the feature off).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// The named counter's total (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// The named gauge's level (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// The named histogram's summary, if registered.
    pub fn hist(&self, name: &str) -> Option<HistSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| *h)
    }

    /// How much the named counter grew since `base` was taken (counters are
    /// process-global and monotone; per-run numbers are always deltas).
    pub fn counter_delta(&self, base: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(base.counter(name))
    }

    /// Prometheus-style text exposition: one `name{label="v"} value` line
    /// per instrument (labels are embedded in the registered names), sorted;
    /// histograms render `_count`/`_sum` plus `{q="…"}` percentile lines.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.hists {
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i..]),
                None => (name.as_str(), ""),
            };
            out.push_str(&format!("{base}_count{labels} {}\n", h.count));
            out.push_str(&format!("{base}_sum{labels} {}\n", h.sum));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!("{base}{{q=\"{q}\"}} {v}\n"));
            }
        }
        out
    }
}

/// Registers (feature on) or discards (feature off) a counter, caching the
/// handle per call site. `counter!("pops_total{outcome=\"success\"}").inc()`.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: $crate::__private::OnceLock<$crate::Counter> =
            $crate::__private::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Feature-off variant: a ZST whose methods are empty inline bodies.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = $name;
        $crate::Counter
    }};
}

/// Registers (feature on) or discards (feature off) a gauge, caching the
/// handle per call site.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: $crate::__private::OnceLock<$crate::Gauge> =
            $crate::__private::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Feature-off variant: a ZST whose methods are empty inline bodies.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        let _ = $name;
        $crate::Gauge
    }};
}

/// Registers (feature on) or discards (feature off) a histogram, caching
/// the handle per call site.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! hist {
    ($name:expr) => {{
        static HANDLE: $crate::__private::OnceLock<$crate::Histogram> =
            $crate::__private::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

/// Feature-off variant: a ZST whose methods are empty inline bodies.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! hist {
    ($name:expr) => {{
        let _ = $name;
        $crate::Histogram
    }};
}

/// Opens a tracing span; bind the guard (`let _span = span!("run");`) — the
/// event is recorded when it drops. Feature off: a ZST with no `Drop`.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static ID: $crate::__private::OnceLock<u32> = $crate::__private::OnceLock::new();
        $crate::Span::enter(*ID.get_or_init(|| $crate::intern($name)))
    }};
}

/// Feature-off variant: a ZST guard with no `Drop`.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        let _ = $name;
        $crate::Span
    }};
}

/// Records a point event on the calling thread's timeline.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! instant {
    ($name:expr) => {{
        static ID: $crate::__private::OnceLock<u32> = $crate::__private::OnceLock::new();
        $crate::instant_event(*ID.get_or_init(|| $crate::intern($name)));
    }};
}

/// Feature-off variant: discards the name.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! instant {
    ($name:expr) => {{
        let _ = $name;
    }};
}

#[cfg(all(test, not(rsched_model)))]
mod tests {
    use super::*;

    #[test]
    fn snapshot_text_renders_all_kinds() {
        let h = HistSummary { count: 2, sum: 30, p50: 10, p95: 20, p99: 20 };
        let snap = Snapshot {
            counters: vec![(r#"pops_total{outcome="success"}"#.into(), 7)],
            gauges: vec![("depth".into(), -3)],
            hists: vec![(r#"lat_ns{queue="0"}"#.into(), h)],
        };
        let text = snap.text();
        assert!(text.contains(r#"pops_total{outcome="success"} 7"#), "{text}");
        assert!(text.contains("depth -3"), "{text}");
        assert!(text.contains(r#"lat_ns_count{queue="0"} 2"#), "{text}");
        assert!(text.contains(r#"lat_ns_sum{queue="0"} 30"#), "{text}");
        assert!(text.contains(r#"lat_ns{q="0.95"} 20"#), "{text}");
        assert_eq!(snap.counter(r#"pops_total{outcome="success"}"#), 7);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("depth"), -3);
        assert!(!snap.is_empty());
    }

    #[test]
    fn counter_delta_saturates() {
        let base = Snapshot { counters: vec![("c".into(), 10)], ..Default::default() };
        let later = Snapshot { counters: vec![("c".into(), 25)], ..Default::default() };
        assert_eq!(later.counter_delta(&base, "c"), 15);
        assert_eq!(base.counter_delta(&later, "c"), 0);
    }
}
