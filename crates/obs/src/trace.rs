//! Span tracing: per-thread fixed-capacity ring buffers flushed on demand
//! to chrome://tracing JSON.
//!
//! Each thread lazily registers one ring (capacity fixed at registration,
//! default 4096 slots, `RSCHED_OBS_RING_CAP` overrides). Recording a span
//! or instant is allocation-free: claim the next slot (`head` counter,
//! thread-local so uncontended), store three `Relaxed` words. When the ring
//! wraps, the oldest events are overwritten — the policy is *keep most
//! recent* (the tail of a run is what post-mortems want).
//!
//! Spans are emitted as chrome "X" (complete) events, written once at span
//! *exit* with the recorded start and duration. This sidesteps the classic
//! B/E pairing breakage when a wrap drops a begin but keeps its end.
//!
//! Flushing (`chrome_trace_json`) walks every ring while writers may still
//! be running. Slots are atomic words, so a torn event (meta from one
//! event, timestamps from another) is *possible* mid-run and renders as a
//! nonsensical but harmless span; flush after joining writers for exact
//! traces. This is a deliberate monitoring-grade trade — see DESIGN.md,
//! "Observability semantics".

use crate::metrics::enabled;
use rsched_sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::cell::Cell;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (slots per thread); `RSCHED_OBS_RING_CAP` wins.
const DEFAULT_RING_CAP: usize = 4096;

/// Event kinds packed into the low bits of `Slot::meta`.
const KIND_EMPTY: u64 = 0;
const KIND_SPAN: u64 = 1;
const KIND_INSTANT: u64 = 2;

/// One recorded event: `meta = name_id << 2 | kind`, `start`/`dur` in ns
/// relative to the process [`epoch`]. Fields are atomics purely so a
/// concurrent flush is race-free Rust; single-writer per ring.
struct Slot {
    meta: AtomicU64,
    start: AtomicU64,
    dur: AtomicU64,
}

/// A per-thread event ring, leaked at registration so flushers can hold
/// `'static` references without keeping a lock across the walk.
struct Ring {
    /// Chrome `tid` (registration order, 1-based).
    tid: u64,
    /// Thread name at registration, for the chrome metadata event.
    name: String,
    /// Monotone slot counter; slot = `head % slots.len()`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn push(&self, kind: u64, name_id: u32, start: u64, dur: u64) {
        let h = self.head.load(Relaxed);
        let slot = &self.slots[h as usize % self.slots.len()];
        slot.start.store(start, Relaxed);
        slot.dur.store(dur, Relaxed);
        slot.meta.store(((name_id as u64) << 2) | kind, Relaxed);
        self.head.store(h + 1, Relaxed);
    }
}

/// All rings ever registered (threads may exit; their rings remain
/// flushable). Also the interned span-name table.
struct TraceState {
    rings: Mutex<Vec<&'static Ring>>,
    names: Mutex<Vec<String>>,
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE
        .get_or_init(|| TraceState { rings: Mutex::new(Vec::new()), names: Mutex::new(Vec::new()) })
}

fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("RSCHED_OBS_RING_CAP")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(DEFAULT_RING_CAP)
    })
}

/// The process time origin; all event timestamps are ns since this instant.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (0 when probes are disabled,
/// so timing probes cost nothing while switched off).
#[inline]
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    epoch().elapsed().as_nanos() as u64
}

/// Interns `name`, returning the id used in ring slots. Cold path — the
/// `span!`/`instant!` macros cache the id per call site.
pub fn intern(name: &str) -> u32 {
    let mut names = state().names.lock().unwrap();
    if let Some(pos) = names.iter().position(|n| n == name) {
        return pos as u32;
    }
    names.push(name.to_owned());
    (names.len() - 1) as u32
}

/// The calling thread's ring, registering (and leaking) it on first use.
fn ring() -> &'static Ring {
    thread_local! {
        static RING: Cell<Option<&'static Ring>> = const { Cell::new(None) };
    }
    RING.with(|r| {
        if let Some(ring) = r.get() {
            return ring;
        }
        let cap = ring_cap();
        let mut rings = state().rings.lock().unwrap();
        let ring: &'static Ring = Box::leak(Box::new(Ring {
            tid: rings.len() as u64 + 1,
            name: std::thread::current().name().unwrap_or("worker").to_owned(),
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    meta: AtomicU64::new(KIND_EMPTY),
                    start: AtomicU64::new(0),
                    dur: AtomicU64::new(0),
                })
                .collect(),
        }));
        rings.push(ring);
        r.set(Some(ring));
        ring
    })
}

/// An open tracing span; records a chrome "X" complete event on drop.
/// Create via the [`span!`](crate::span) macro and bind it:
/// `let _span = span!("worker_run");`.
#[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
pub struct Span {
    /// `u32::MAX` = disabled at entry; record nothing on drop.
    name_id: u32,
    start: u64,
}

impl Span {
    /// Enters a span for the interned `name_id` (macro-facing).
    #[inline]
    pub fn enter(name_id: u32) -> Span {
        if !enabled() {
            return Span { name_id: u32::MAX, start: 0 };
        }
        Span { name_id, start: now_ns() }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.name_id == u32::MAX || !enabled() {
            return;
        }
        let end = now_ns();
        ring().push(KIND_SPAN, self.name_id, self.start, end.saturating_sub(self.start));
    }
}

/// Records a point event for the interned `name_id` (macro-facing; use the
/// [`instant!`](crate::instant) macro).
#[inline]
pub fn instant_event(name_id: u32) {
    if !enabled() {
        return;
    }
    ring().push(KIND_INSTANT, name_id, now_ns(), 0);
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes every ring to a chrome://tracing "trace event format" JSON
/// document (timestamps in µs). Valid JSON even with zero events; flush
/// after joining instrumented threads for a tear-free trace.
pub fn chrome_trace_json() -> String {
    let names = state().names.lock().unwrap().clone();
    let rings: Vec<&'static Ring> = state().rings.lock().unwrap().clone();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for ring in &rings {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                ring.tid,
                escape_json(&ring.name)
            ),
            &mut first,
        );
        let head = ring.head.load(Relaxed);
        let cap = ring.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        for i in lo..head {
            let slot = &ring.slots[i as usize % cap as usize];
            let meta = slot.meta.load(Relaxed);
            let (kind, name_id) = (meta & 0b11, (meta >> 2) as usize);
            if kind == KIND_EMPTY || name_id >= names.len() {
                continue;
            }
            let name = escape_json(&names[name_id]);
            let ts = slot.start.load(Relaxed) as f64 / 1_000.0;
            let ev = if kind == KIND_SPAN {
                let dur = slot.dur.load(Relaxed) as f64 / 1_000.0;
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"rsched\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{}}}",
                    ring.tid
                )
            } else {
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"rsched\",\"ph\":\"i\",\"ts\":{ts:.3},\"s\":\"t\",\"pid\":1,\"tid\":{}}}",
                    ring.tid
                )
            };
            emit(ev, &mut first);
        }
    }
    out.push_str("]}");
    out
}
