//! Behavior of the **live** (`--features obs`) build: counters stripe and
//! sum correctly across threads, gauges track levels, histograms register,
//! spans and instants land in the chrome-trace JSON. All per-test numbers
//! use snapshot deltas (the registry is process-global) and test-unique
//! names (tests in one binary run concurrently).

use rsched_obs as obs;
use std::thread;

#[test]
#[allow(clippy::assertions_on_constants)] // pinning the const is the point
fn feature_gate_reports_enabled() {
    assert!(obs::ENABLED);
    assert!(obs::enabled());
}

#[test]
fn counter_sums_across_threads() {
    const NAME: &str = r#"t_counter_total{case="threads"}"#;
    let base = obs::snapshot();
    thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..1000 {
                    obs::counter!(NAME).inc();
                }
            });
        }
    });
    let snap = obs::snapshot();
    assert_eq!(snap.counter_delta(&base, NAME), 8 * 1000);
    // Handles are Copy and map to the same cells per name.
    assert_eq!(obs::counter(NAME).value(), snap.counter(NAME));
}

#[test]
fn gauge_tracks_level_and_is_shared_by_name() {
    const NAME: &str = r#"t_gauge{case="level"}"#;
    let g1 = obs::gauge(NAME);
    let g2 = obs::gauge(NAME);
    g1.set(0);
    g1.add(10);
    g2.sub(4);
    assert_eq!(g1.value(), 6);
    assert_eq!(obs::snapshot().gauge(NAME), 6);
}

#[test]
fn histogram_registers_and_summarizes() {
    const NAME: &str = "t_hist_ns";
    let h = obs::hist!(NAME);
    for v in 1..=100u64 {
        h.record(v * 10);
    }
    let snap = obs::snapshot();
    let sum = snap.hist(NAME).expect("histogram registered");
    assert!(sum.count >= 100);
    assert!(sum.p50 >= 500 && sum.p99 >= 900);
    let text = snap.text();
    assert!(text.contains("t_hist_ns_count "), "{text}");
    assert!(text.contains(r#"t_hist_ns{q="0.99"}"#), "{text}");
}

#[test]
fn spans_and_instants_reach_chrome_trace() {
    {
        let _span = obs::span!("t_region");
        obs::instant!("t_marker");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let json = obs::chrome_trace_json();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.ends_with("]}"), "{json}");
    assert!(json.contains(r#""name":"t_region","cat":"rsched","ph":"X""#), "{json}");
    assert!(json.contains(r#""name":"t_marker","cat":"rsched","ph":"i""#), "{json}");
    assert!(json.contains(r#""ph":"M""#), "thread metadata event missing: {json}");
}

#[test]
fn ring_wrap_keeps_most_recent() {
    // Dedicated thread => dedicated ring; overflow it and check the
    // survivors are the most recent events (the overflow policy).
    thread::Builder::new()
        .name("wrap-probe".into())
        .spawn(|| {
            for _ in 0..6000 {
                obs::instant!("t_wrap_old");
            }
            for _ in 0..10 {
                obs::instant!("t_wrap_new");
            }
        })
        .unwrap()
        .join()
        .unwrap();
    let json = obs::chrome_trace_json();
    assert!(json.contains("t_wrap_new"), "recent events must survive a wrap");
    // Default capacity is 4096: 6010 events in means the earliest were
    // overwritten; the ring never grows.
    assert!(json.matches("t_wrap_old").count() < 6000);
}

#[test]
fn now_ns_is_monotone() {
    let a = obs::now_ns();
    let b = obs::now_ns();
    assert!(b >= a);
}
