//! The runtime kill-switch, isolated in its own integration-test binary:
//! `set_enabled(false)` is process-global, so flipping it next to the
//! concurrent `obs_enabled` tests would race their assertions. Separate
//! test binaries run as separate processes.

use rsched_obs as obs;

#[test]
fn set_enabled_false_mutes_probes() {
    const NAME: &str = "rd_counter_total";
    let c = obs::counter(NAME);
    c.inc();
    assert_eq!(c.value(), 1);

    obs::set_enabled(false);
    assert!(!obs::enabled());
    c.inc();
    obs::gauge("rd_gauge").add(5);
    obs::hist!("rd_hist").record(7);
    assert_eq!(obs::now_ns(), 0, "timing probes return 0 while disabled");
    {
        let _span = obs::span!("rd_span");
        obs::instant!("rd_instant");
    }
    assert_eq!(c.value(), 1, "counter must not move while disabled");
    assert_eq!(obs::snapshot().gauge("rd_gauge"), 0);
    let json = obs::chrome_trace_json();
    assert!(!json.contains("rd_span") && !json.contains("rd_instant"), "{json}");

    obs::set_enabled(true);
    c.inc();
    assert_eq!(c.value(), 2, "re-enabling resumes recording");
}
