//! Pins the zero-cost contract of the **feature-off** build: every probe
//! handle is a ZST, every query returns its inert default, and the macros
//! compile (and type-check names) without registering anything. Style
//! follows `crates/queues/tests/facade_zero_cost.rs` — layout/TypeId pins
//! rather than codegen inspection.
//!
//! Compiled away entirely when `--features obs` is active (the live build
//! has its own suite, `obs_enabled.rs`).
#![cfg(all(not(feature = "obs"), not(rsched_model)))]

use rsched_obs as obs;
use std::mem::{align_of, size_of};

#[test]
#[allow(clippy::assertions_on_constants)] // pinning the const is the point
fn feature_gate_reports_disabled() {
    assert!(!obs::ENABLED);
    assert!(!obs::enabled());
    // The runtime switch is inert too.
    obs::set_enabled(true);
    assert!(!obs::enabled());
}

#[test]
fn handles_are_zero_sized() {
    assert_eq!(size_of::<obs::Counter>(), 0);
    assert_eq!(size_of::<obs::Gauge>(), 0);
    assert_eq!(size_of::<obs::Histogram>(), 0);
    assert_eq!(size_of::<obs::Span>(), 0);
    assert_eq!(align_of::<obs::Span>(), 1);
    // No `Drop` glue on the no-op span: dropping it must be a true no-op.
    assert!(!std::mem::needs_drop::<obs::Span>());
}

#[test]
fn probes_are_inert() {
    let c = obs::counter!("zc_counter_total");
    c.add(41);
    c.inc();
    assert_eq!(c.value(), 0);

    let g = obs::gauge!("zc_gauge");
    g.add(7);
    g.sub(3);
    g.set(99);
    assert_eq!(g.value(), 0);

    let h = obs::hist!("zc_hist_ns");
    h.record(123);

    {
        let _span = obs::span!("zc_span");
        obs::instant!("zc_instant");
    }

    assert_eq!(obs::now_ns(), 0);
    assert!(obs::snapshot().is_empty());
    assert_eq!(obs::snapshot().counter("zc_counter_total"), 0);
    assert!(obs::chrome_trace_json().is_empty());
}
