//! Edge-weighted graphs layered on [`CsrGraph`], used by the SSSP workloads.

use crate::CsrGraph;
use rand::Rng;
use std::fmt;

/// An undirected graph with a positive integer weight per edge.
///
/// Weights are stored parallel to the CSR adjacency array, so
/// `neighbors_weighted(v)` is a contiguous scan.
///
/// # Examples
///
/// ```
/// use rsched_graph::WeightedCsr;
///
/// let g = WeightedCsr::from_weighted_edges(3, [(0, 1, 5), (1, 2, 7)]);
/// let out: Vec<_> = g.neighbors_weighted(1).collect();
/// assert_eq!(out, vec![(0, 5), (2, 7)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct WeightedCsr {
    graph: CsrGraph,
    /// Start of each vertex's half-edge range; mirrors the CSR offsets.
    offsets: Vec<usize>,
    /// `weights[i]` is the weight of the `i`-th half-edge.
    weights: Vec<u32>,
}

impl WeightedCsr {
    /// Builds a weighted graph from `(u, v, w)` triples.
    ///
    /// Self-loops are dropped. If the same edge appears multiple times the
    /// smallest weight wins (so the result is well-defined regardless of
    /// input order).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_weighted_edges<I>(n: usize, triples: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32, u32)>,
    {
        let mut norm: Vec<(u32, u32, u32)> = triples
            .into_iter()
            .filter(|&(a, b, _)| a != b)
            .map(|(a, b, w)| if a < b { (a, b, w) } else { (b, a, w) })
            .collect();
        norm.sort_unstable();
        norm.dedup_by(|next, prev| (next.0, next.1) == (prev.0, prev.1));
        let edges: Vec<(u32, u32)> = norm.iter().map(|&(a, b, _)| (a, b)).collect();
        let graph = CsrGraph::from_normalized(n, &edges);
        let offsets = Self::compute_offsets(&graph);
        // Fill weights by replaying the CSR fill order (lexicographic scan of
        // normalized edges appends to both endpoint ranges in order).
        let mut weights = vec![0u32; 2 * edges.len()];
        let mut cursor = offsets[..n].to_vec();
        for &(a, b, w) in &norm {
            weights[cursor[a as usize]] = w;
            cursor[a as usize] += 1;
            weights[cursor[b as usize]] = w;
            cursor[b as usize] += 1;
        }
        WeightedCsr { graph, offsets, weights }
    }

    fn compute_offsets(g: &CsrGraph) -> Vec<usize> {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for v in 0..n as u32 {
            acc += g.degree(v);
            offsets.push(acc);
        }
        offsets
    }

    /// Attaches uniform random weights in `lo..=hi` to every edge of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo == 0` (SSSP requires positive weights).
    pub fn with_uniform_weights<R: Rng>(g: &CsrGraph, lo: u32, hi: u32, rng: &mut R) -> Self {
        assert!(lo > 0, "SSSP weights must be positive");
        assert!(lo <= hi, "empty weight range");
        let triples: Vec<(u32, u32, u32)> =
            g.edges().map(|(u, v)| (u, v, rng.gen_range(lo..=hi))).collect();
        Self::from_weighted_edges(g.num_vertices(), triples)
    }

    /// The underlying unweighted graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Iterator over `(neighbor, weight)` pairs of `v`, neighbor-sorted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors_weighted(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let start = self.offsets[v as usize];
        let ns = self.graph.neighbors(v);
        ns.iter().copied().zip(self.weights[start..start + ns.len()].iter().copied())
    }
}

impl fmt::Debug for WeightedCsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeightedCsr")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_symmetric() {
        let g = WeightedCsr::from_weighted_edges(4, [(0, 1, 3), (2, 1, 9), (3, 0, 4)]);
        let w01: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(w01, vec![(1, 3), (3, 4)]);
        let w1: Vec<_> = g.neighbors_weighted(1).collect();
        assert_eq!(w1, vec![(0, 3), (2, 9)]);
    }

    #[test]
    fn duplicate_edges_take_min_weight() {
        let g = WeightedCsr::from_weighted_edges(2, [(0, 1, 9), (1, 0, 2), (0, 1, 5)]);
        assert_eq!(g.num_edges(), 1);
        let w: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(w, vec![(1, 2)]);
    }

    #[test]
    fn uniform_weights_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = CsrGraph::from_edges(10, (0..9u32).map(|i| (i, i + 1)));
        let g = WeightedCsr::with_uniform_weights(&base, 2, 6, &mut rng);
        for v in 0..10 {
            for (_, w) in g.neighbors_weighted(v) {
                assert!((2..=6).contains(&w));
            }
        }
        assert_eq!(g.num_edges(), base.num_edges());
    }

    #[test]
    fn all_half_edges_covered() {
        let g = WeightedCsr::from_weighted_edges(
            5,
            [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4), (4, 0, 5)],
        );
        let mut count = 0;
        for v in 0..5 {
            count += g.neighbors_weighted(v).count();
        }
        assert_eq!(count, 2 * g.num_edges());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let base = CsrGraph::from_edges(2, [(0, 1)]);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = WeightedCsr::with_uniform_weights(&base, 0, 3, &mut rng);
    }
}
