//! Edge incidence structures and line graphs.
//!
//! The paper reduces greedy maximal matching to greedy MIS on the line graph
//! `G'` (one `G'`-vertex per `G`-edge, adjacent iff the edges share an
//! endpoint, §2.4). [`line_graph`] materializes `G'`; [`Incidence`] is the
//! implicit alternative the direct matching implementation uses to avoid the
//! quadratic blowup on high-degree vertices.

use crate::CsrGraph;

/// Vertex → incident-edge-id index for a fixed canonical edge list.
///
/// Edge ids are positions in [`CsrGraph::edge_list`] (lexicographic order of
/// `(u, v)` with `u < v`).
///
/// # Examples
///
/// ```
/// use rsched_graph::{CsrGraph, Incidence};
///
/// let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let edges = g.edge_list();
/// let inc = Incidence::new(g.num_vertices(), &edges);
/// assert_eq!(inc.incident(1), &[0, 1]); // vertex 1 touches both edges
/// ```
#[derive(Clone, Debug)]
pub struct Incidence {
    offsets: Vec<usize>,
    edge_ids: Vec<u32>,
}

impl Incidence {
    /// Builds the incidence index for `edges` over `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn new(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            assert!((a as usize) < n && (b as usize) < n, "endpoint out of range");
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut edge_ids = vec![0u32; acc];
        for (id, &(a, b)) in edges.iter().enumerate() {
            edge_ids[cursor[a as usize]] = id as u32;
            cursor[a as usize] += 1;
            edge_ids[cursor[b as usize]] = id as u32;
            cursor[b as usize] += 1;
        }
        Incidence { offsets, edge_ids }
    }

    /// Ids of the edges incident to vertex `v`, in edge-id order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn incident(&self, v: u32) -> &[u32] {
        &self.edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Number of vertices indexed.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Builds the line graph of `g`.
///
/// Returns the line graph (one vertex per edge of `g`) together with the
/// canonical edge list of `g`, so callers can map line-graph vertices back to
/// the original edges.
///
/// Time and space are `Θ(Σ_v deg(v)²)` — quadratic in the maximum degree.
/// For high-degree graphs prefer the implicit [`Incidence`]-based matching in
/// `rsched-core`.
pub fn line_graph(g: &CsrGraph) -> (CsrGraph, Vec<(u32, u32)>) {
    let edges = g.edge_list();
    let inc = Incidence::new(g.num_vertices(), &edges);
    let mut lg_edges: Vec<(u32, u32)> = Vec::new();
    for v in g.vertices() {
        let ids = inc.incident(v);
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                lg_edges.push((ids[i], ids[j]));
            }
        }
    }
    (CsrGraph::from_edges(edges.len(), lg_edges), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn incidence_covers_each_edge_twice() {
        let g = gen::grid2d(3, 3);
        let edges = g.edge_list();
        let inc = Incidence::new(g.num_vertices(), &edges);
        let mut counts = vec![0usize; edges.len()];
        for v in g.vertices() {
            for &e in inc.incident(v) {
                counts[e as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn incidence_matches_endpoints() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let edges = g.edge_list();
        let inc = Incidence::new(4, &edges);
        for v in g.vertices() {
            for &e in inc.incident(v) {
                let (a, b) = edges[e as usize];
                assert!(a == v || b == v);
            }
        }
    }

    #[test]
    fn line_graph_of_path() {
        // P4: 0-1-2-3 has 3 edges forming a path in the line graph.
        let g = gen::path(4);
        let (lg, edges) = line_graph(&g);
        assert_eq!(edges.len(), 3);
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 2);
        assert!(lg.has_edge(0, 1) && lg.has_edge(1, 2) && !lg.has_edge(0, 2));
    }

    #[test]
    fn line_graph_of_star_is_clique() {
        let g = gen::star(5); // 4 edges all sharing the center
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.num_vertices(), 4);
        assert_eq!(lg.num_edges(), 6); // K4
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = gen::cycle(3);
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 3);
    }
}
