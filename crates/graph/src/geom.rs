//! Planar geometry substrate for the incremental-algorithms workloads:
//! integer points, exact predicates, and point-cloud generators.
//!
//! The randomized-incremental Delaunay workload (arXiv 2003.09363) is only
//! as robust as its orientation and in-circle tests, so both predicates are
//! evaluated **exactly** in `i128` over integer coordinates — no floating
//! point, no adaptive-precision fallback, no epsilons. The price is a
//! coordinate bound: inputs must satisfy `|x|, |y| ≤` [`MAX_COORD`]
//! (= 2²⁶), which keeps every intermediate of the 4×4 in-circle determinant
//! below 2¹¹³ (see [`in_circle`]) while leaving ~67 million distinct values
//! per axis — far finer than any of the experiments resolve.
//!
//! Generators cover the three regimes the Delaunay literature distinguishes:
//! uniformly random ([`uniform_square`]), clustered ([`gaussian_clusters`]),
//! and adversarially degenerate ([`degenerate_grid`]: every 2×2 cell is
//! cocircular and every row/column collinear). All generators return
//! pairwise-distinct points.

use rand::Rng;
use std::collections::HashSet;

/// Inclusive coordinate bound for all geometry inputs: `|x|, |y| ≤ 2²⁶`.
///
/// With coordinate differences bounded by 2²⁷, every term of the in-circle
/// determinant is below 2¹¹³ and the `i128` evaluation is exact.
pub const MAX_COORD: i64 = 1 << 26;

/// A point in the plane with integer coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate, `|x| ≤` [`MAX_COORD`].
    pub x: i64,
    /// Vertical coordinate, `|y| ≤` [`MAX_COORD`].
    pub y: i64,
}

impl Point {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate exceeds [`MAX_COORD`] in magnitude (the
    /// predicates' exactness contract).
    pub fn new(x: i64, y: i64) -> Self {
        assert!(
            x.abs() <= MAX_COORD && y.abs() <= MAX_COORD,
            "coordinate ({x}, {y}) outside the exact-predicate range ±{MAX_COORD}"
        );
        Point { x, y }
    }
}

/// Exact orientation of the triple `(a, b, c)`: `1` if counterclockwise
/// (`c` strictly left of the directed line `a → b`), `-1` if clockwise,
/// `0` if collinear.
///
/// # Examples
///
/// ```
/// use rsched_graph::geom::{orient2d, Point};
///
/// let a = Point::new(0, 0);
/// let b = Point::new(4, 0);
/// assert_eq!(orient2d(a, b, Point::new(0, 3)), 1);  // left turn
/// assert_eq!(orient2d(a, b, Point::new(0, -3)), -1); // right turn
/// assert_eq!(orient2d(a, b, Point::new(9, 0)), 0);  // collinear
/// ```
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> i8 {
    let det = (b.x - a.x) as i128 * (c.y - a.y) as i128 - (b.y - a.y) as i128 * (c.x - a.x) as i128;
    sign(det)
}

/// Exact in-circle test: `1` if `d` lies strictly inside the circumcircle
/// of the counterclockwise triangle `(a, b, c)`, `-1` if strictly outside,
/// `0` if cocircular.
///
/// The caller must pass `a, b, c` in counterclockwise order (the sign flips
/// for clockwise input); the Delaunay code maintains that invariant
/// structurally and the verifier checks it per triangle.
///
/// Exactness: with [`MAX_COORD`]-bounded inputs, each lifted coordinate
/// `adx² + ady²` is ≤ 2⁵⁵, each 2×2 cofactor ≤ 2⁸³, and each of the three
/// expansion terms ≤ 2¹¹⁰ — the `i128` sum cannot overflow.
///
/// # Examples
///
/// ```
/// use rsched_graph::geom::{in_circle, Point};
///
/// let a = Point::new(0, 0);
/// let b = Point::new(2, 0);
/// let c = Point::new(0, 2);
/// assert_eq!(in_circle(a, b, c, Point::new(1, 1)), 1);  // inside
/// assert_eq!(in_circle(a, b, c, Point::new(2, 2)), 0);  // cocircular
/// assert_eq!(in_circle(a, b, c, Point::new(9, 9)), -1); // outside
/// ```
#[inline]
pub fn in_circle(a: Point, b: Point, c: Point, d: Point) -> i8 {
    let adx = (a.x - d.x) as i128;
    let ady = (a.y - d.y) as i128;
    let bdx = (b.x - d.x) as i128;
    let bdy = (b.y - d.y) as i128;
    let cdx = (c.x - d.x) as i128;
    let cdy = (c.y - d.y) as i128;
    let al = adx * adx + ady * ady;
    let bl = bdx * bdx + bdy * bdy;
    let cl = cdx * cdx + cdy * cdy;
    let det =
        adx * (bdy * cl - cdy * bl) - ady * (bdx * cl - cdx * bl) + al * (bdx * cdy - cdx * bdy);
    sign(det)
}

/// Whether `p` lies on the **open** segment `(a, b)`: collinear with the
/// endpoints and strictly between them. Used by the Delaunay ghost-cell
/// conflict rule for points landing exactly on a hull edge.
#[inline]
pub fn on_open_segment(a: Point, b: Point, p: Point) -> bool {
    if orient2d(a, b, p) != 0 || p == a || p == b {
        return false;
    }
    let dot = (p.x - a.x) as i128 * (b.x - a.x) as i128 + (p.y - a.y) as i128 * (b.y - a.y) as i128;
    let len2 =
        (b.x - a.x) as i128 * (b.x - a.x) as i128 + (b.y - a.y) as i128 * (b.y - a.y) as i128;
    dot > 0 && dot < len2
}

#[inline]
fn sign(det: i128) -> i8 {
    match det.cmp(&0) {
        std::cmp::Ordering::Greater => 1,
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
    }
}

/// `n` pairwise-distinct points uniform over the square `[0, side)²`
/// (rejection-resampled on collision).
///
/// # Panics
///
/// Panics if `side` exceeds [`MAX_COORD`], or if the square cannot hold `n`
/// distinct points with headroom (`n > side²/2`).
pub fn uniform_square<R: Rng>(n: usize, side: i64, rng: &mut R) -> Vec<Point> {
    assert!(side > 0 && side <= MAX_COORD, "side must be in 1..={MAX_COORD}");
    assert!(
        (n as u128) * 2 <= (side as u128) * (side as u128),
        "square of side {side} too small for {n} distinct points"
    );
    let mut seen = HashSet::with_capacity(n);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point::new(rng.gen_range(0..side), rng.gen_range(0..side));
        if seen.insert(p) {
            pts.push(p);
        }
    }
    pts
}

/// `n` pairwise-distinct points in `clusters` Gaussian blobs (Box–Muller,
/// standard deviation `spread`) with uniformly random cluster centers, all
/// clamped into the exact-predicate range. Models the clustered instances
/// where point location does most of the incremental work.
///
/// # Panics
///
/// Panics if `clusters == 0` or `spread <= 0`, or if the blobs are too
/// tight to hold `n` distinct lattice points (detected by rejection
/// starvation, the analogue of [`uniform_square`]'s capacity assert —
/// a 1-spread blob only reaches a few thousand distinct integer points).
pub fn gaussian_clusters<R: Rng>(
    n: usize,
    clusters: usize,
    spread: f64,
    rng: &mut R,
) -> Vec<Point> {
    assert!(clusters > 0, "need at least one cluster");
    assert!(spread > 0.0, "spread must be positive");
    let half = (MAX_COORD / 2) as f64;
    let centers: Vec<(f64, f64)> =
        (0..clusters).map(|_| (rng.gen_range(-half..half), rng.gen_range(-half..half))).collect();
    let mut seen = HashSet::with_capacity(n);
    let mut pts = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while pts.len() < n {
        attempts += 1;
        assert!(
            attempts <= 64 * n + 1_024,
            "clusters too tight: placed {} of {n} distinct points in {attempts} draws \
             (raise spread or lower n)",
            pts.len()
        );
        let (cx, cy) = centers[pts.len() % clusters];
        // Box–Muller: two uniforms to one Gaussian pair (the shimmed rand
        // has no Normal distribution; this keeps the stream reproducible).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = (-2.0 * u1.ln()).sqrt() * spread;
        let p = Point::new(clamp_coord(cx + r * u2.cos()), clamp_coord(cy + r * u2.sin()));
        if seen.insert(p) {
            pts.push(p);
        }
    }
    pts
}

fn clamp_coord(v: f64) -> i64 {
    (v.round() as i64).clamp(-MAX_COORD, MAX_COORD)
}

/// The first `n` points of a `⌈√n⌉ × ⌈√n⌉` integer grid with the given
/// spacing, row-major from the origin — the degenerate stress instance:
/// every axis-aligned line is collinear and every unit cell is cocircular,
/// so the exact predicates hit their zero branches constantly.
///
/// # Panics
///
/// Panics if `spacing < 1` or the grid leaves the exact-predicate range.
pub fn degenerate_grid(n: usize, spacing: i64) -> Vec<Point> {
    assert!(spacing >= 1, "spacing must be at least 1");
    let cols = (n as f64).sqrt().ceil() as i64;
    assert!(
        cols.saturating_mul(spacing) <= MAX_COORD,
        "grid of {n} points at spacing {spacing} exceeds the coordinate range"
    );
    (0..n as i64).map(|i| Point::new((i % cols) * spacing, (i / cols) * spacing)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orientation_antisymmetry_and_cycles() {
        let a = Point::new(-3, 1);
        let b = Point::new(5, 2);
        let c = Point::new(0, 7);
        assert_eq!(orient2d(a, b, c), 1);
        // Cyclic rotation preserves, swap flips.
        assert_eq!(orient2d(b, c, a), 1);
        assert_eq!(orient2d(c, a, b), 1);
        assert_eq!(orient2d(b, a, c), -1);
    }

    #[test]
    fn in_circle_detects_cocircular_grid_cell() {
        // The four corners of a grid cell are cocircular: the degenerate
        // case the grid generator is built to exercise.
        let a = Point::new(0, 0);
        let b = Point::new(1, 0);
        let c = Point::new(1, 1);
        assert_eq!(in_circle(a, b, c, Point::new(0, 1)), 0);
    }

    #[test]
    fn in_circle_exact_at_extreme_coordinates() {
        // Full-range right triangle: the i128 bound analysis must hold at
        // the documented MAX_COORD, not just at toy sizes.
        let a = Point::new(-MAX_COORD, -MAX_COORD);
        let b = Point::new(MAX_COORD, -MAX_COORD);
        let c = Point::new(-MAX_COORD, MAX_COORD);
        // Circumcircle is centered at the origin through the corners.
        assert_eq!(in_circle(a, b, c, Point::new(MAX_COORD, MAX_COORD)), 0);
        assert_eq!(in_circle(a, b, c, Point::new(0, 0)), 1);
        assert_eq!(in_circle(a, b, c, Point::new(MAX_COORD, MAX_COORD - 1)), 1);
    }

    #[test]
    fn open_segment_excludes_endpoints_and_beyond() {
        let a = Point::new(0, 0);
        let b = Point::new(4, 0);
        assert!(on_open_segment(a, b, Point::new(1, 0)));
        assert!(!on_open_segment(a, b, Point::new(0, 0)));
        assert!(!on_open_segment(a, b, Point::new(4, 0)));
        assert!(!on_open_segment(a, b, Point::new(5, 0))); // collinear, beyond
        assert!(!on_open_segment(a, b, Point::new(2, 1))); // off the line
    }

    #[test]
    fn uniform_square_points_distinct_and_in_range() {
        let pts = uniform_square(500, 1 << 12, &mut StdRng::seed_from_u64(3));
        assert_eq!(pts.len(), 500);
        let set: HashSet<Point> = pts.iter().copied().collect();
        assert_eq!(set.len(), 500);
        assert!(pts.iter().all(|p| (0..1 << 12).contains(&p.x) && (0..1 << 12).contains(&p.y)));
    }

    #[test]
    fn gaussian_clusters_distinct_and_clamped() {
        let pts = gaussian_clusters(400, 5, 1_000.0, &mut StdRng::seed_from_u64(4));
        assert_eq!(pts.len(), 400);
        let set: HashSet<Point> = pts.iter().copied().collect();
        assert_eq!(set.len(), 400);
        assert!(pts.iter().all(|p| p.x.abs() <= MAX_COORD && p.y.abs() <= MAX_COORD));
    }

    #[test]
    fn grid_is_degenerate_by_construction() {
        let pts = degenerate_grid(9, 2);
        assert_eq!(pts.len(), 9);
        // Row-major 3×3: first row collinear.
        assert_eq!(orient2d(pts[0], pts[1], pts[2]), 0);
        // A 2×2 cell is cocircular.
        assert_eq!(in_circle(pts[0], pts[1], pts[4], pts[3]), 0);
    }

    #[test]
    #[should_panic(expected = "outside the exact-predicate range")]
    fn out_of_range_point_panics() {
        let _ = Point::new(MAX_COORD + 1, 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn oversubscribed_square_panics() {
        let _ = uniform_square(100, 10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "clusters too tight")]
    fn starved_clusters_panic_instead_of_hanging() {
        // A 0.5-spread blob reaches only a few hundred distinct lattice
        // points; asking for 5000 must trip the rejection-starvation guard.
        let _ = gaussian_clusters(5_000, 1, 0.5, &mut StdRng::seed_from_u64(1));
    }
}
