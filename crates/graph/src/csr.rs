//! Compressed sparse row (CSR) representation of undirected graphs.

use std::fmt;

/// An immutable undirected graph in compressed sparse row form.
///
/// Vertices are the dense ids `0..n` (as `u32`). Adjacency lists are sorted,
/// contain no duplicates and no self-loops, and every edge appears in the
/// lists of both endpoints. This is the substrate every workload in the
/// workspace runs on: dependency graphs for the scheduling framework are CSR
/// graphs plus a priority permutation.
///
/// # Examples
///
/// ```
/// use rsched_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (1, 2)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3); // duplicate (1,2) collapsed
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(2, 1));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `adj` with `v`'s neighbors.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    adj: Vec<u32>,
}

impl CsrGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        CsrGraph { offsets: vec![0; n + 1], adj: Vec::new() }
    }

    /// Builds a graph from an arbitrary edge list.
    ///
    /// Self-loops are dropped; parallel and reversed duplicates are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut norm: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        Self::from_normalized(n, &norm)
    }

    /// Builds a graph from edges that are already normalized: each pair
    /// `(u, v)` satisfies `u < v`, and the slice is sorted and duplicate-free.
    ///
    /// This is the allocation-light path used by the generators.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`, or (in debug builds) if the input is
    /// not normalized.
    pub fn from_normalized(n: usize, norm: &[(u32, u32)]) -> Self {
        debug_assert!(norm.windows(2).all(|w| w[0] < w[1]), "edges not sorted/unique");
        debug_assert!(norm.iter().all(|&(a, b)| a < b), "edges not normalized");
        let mut deg = vec![0usize; n];
        for &(a, b) in norm {
            assert!((b as usize) < n, "edge endpoint {} out of range (n = {})", b, n);
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut adj = vec![0u32; acc];
        // Scanning pairs in lexicographic order fills every adjacency list in
        // ascending order: all `(u, v)` entries with `u < v` land in `v`'s
        // list before any `(v, w)` entry does, and each group is sorted.
        for &(a, b) in norm {
            adj[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            adj[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        CsrGraph { offsets, adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor list of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices, `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = u32> {
        0..self.num_vertices() as u32
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`, in
    /// lexicographic order. The position of an edge in this iteration is its
    /// canonical *edge id* (used by [`crate::Incidence`] and the matching
    /// workloads).
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Collects [`CsrGraph::edges`] into a vector (the canonical edge list).
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges());
        out.extend(self.edges());
        out
    }

    /// Largest degree in the graph, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree, `2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.adj.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Total bytes of the two backing arrays; used by the bench harness to
    /// report instance footprints.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.adj.len() * std::mem::size_of::<u32>()
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_vertices() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 0), (1, 1), (1, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let g = CsrGraph::from_edges(6, [(4, 2), (0, 5), (3, 1), (2, 0), (5, 2)]);
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            for &u in ns {
                assert!(g.neighbors(u).contains(&v), "asymmetric edge {u}-{v}");
                assert!(g.has_edge(u, v) && g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn edge_iteration_is_canonical() {
        let g = CsrGraph::from_edges(4, [(2, 3), (0, 1), (0, 2), (1, 3)]);
        let edges = g.edge_list();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn degree_statistics() {
        let g = CsrGraph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let _ = CsrGraph::from_edges(2, [(0, 2)]);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = CsrGraph::empty(1);
        assert!(!format!("{:?}", g).is_empty());
    }
}
