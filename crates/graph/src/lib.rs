//! # rsched-graph — graph substrate for the relaxed-scheduler framework
//!
//! Everything the scheduling experiments run *on*: compressed sparse row
//! graphs ([`CsrGraph`], [`WeightedCsr`]), random and structured generators
//! ([`gen`]), priority permutations ([`Permutation`]), line graphs and edge
//! incidence ([`line_graph`], [`Incidence`]), linked-list instances for list
//! contraction ([`list`]), planar points with exact predicates for the
//! incremental Delaunay workload ([`geom`]), connected components
//! ([`components`]), persistence ([`io`]) and degree statistics ([`stats`]).
//!
//! # Examples
//!
//! ```
//! use rsched_graph::{gen, Permutation};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let g = gen::gnm(1_000, 10_000, &mut rng);       // Table 1's instance family
//! let pi = Permutation::random(g.num_vertices(), &mut rng);
//! assert_eq!(g.num_edges(), 10_000);
//! assert_eq!(pi.len(), 1_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod components;
mod csr;
pub mod gen;
pub mod geom;
pub mod io;
mod linegraph;
/// Doubly-linked-list instances for the list-contraction workload.
#[path = "linkedlist.rs"]
pub mod list;
mod permutation;
pub mod stats;
mod weighted;

pub use csr::CsrGraph;
pub use linegraph::{line_graph, Incidence};
pub use list::ListInstance;
pub use permutation::Permutation;
pub use weighted::WeightedCsr;

#[cfg(test)]
mod proptests {
    use crate::{CsrGraph, Permutation};
    use proptest::prelude::*;

    proptest! {
        /// `from_edges` always yields a well-formed symmetric simple graph.
        #[test]
        fn csr_well_formed(n in 1usize..64, raw in proptest::collection::vec((0u32..64, 0u32..64), 0..256)) {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let g = CsrGraph::from_edges(n, edges.iter().copied());
            let mut m = 0usize;
            for v in g.vertices() {
                let ns = g.neighbors(v);
                prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(!ns.contains(&v));
                for &u in ns {
                    prop_assert!(g.has_edge(u, v));
                }
                m += ns.len();
            }
            prop_assert_eq!(m, 2 * g.num_edges());
            // Every surviving input edge is present.
            for (a, b) in edges {
                if a != b {
                    prop_assert!(g.has_edge(a, b));
                }
            }
        }

        /// Random permutations are bijections with consistent inverse.
        #[test]
        fn permutation_bijection(n in 0usize..256, seed in any::<u64>()) {
            use rand::{SeedableRng, rngs::StdRng};
            let p = Permutation::random(n, &mut StdRng::seed_from_u64(seed));
            let mut seen = vec![false; n];
            for pos in 0..n as u32 {
                let t = p.task_at(pos);
                prop_assert!(!seen[t as usize]);
                seen[t as usize] = true;
                prop_assert_eq!(p.label(t), pos);
            }
        }
    }
}
