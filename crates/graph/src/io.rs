//! Graph persistence: a human-readable edge-list text format and a compact
//! binary format, so experiment inputs can be cached across harness runs.

use crate::CsrGraph;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Magic prefix of the binary graph format.
const MAGIC: &[u8; 4] = b"RSG1";

/// Error produced when reading a graph fails.
#[derive(Debug)]
pub enum ReadGraphError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The payload was malformed; the string names the problem.
    Parse(String),
}

impl fmt::Display for ReadGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadGraphError::Io(e) => write!(f, "i/o error reading graph: {e}"),
            ReadGraphError::Parse(msg) => write!(f, "malformed graph data: {msg}"),
        }
    }
}

impl Error for ReadGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadGraphError::Io(e) => Some(e),
            ReadGraphError::Parse(_) => None,
        }
    }
}

impl From<io::Error> for ReadGraphError {
    fn from(e: io::Error) -> Self {
        ReadGraphError::Io(e)
    }
}

/// Writes `g` as text: a `n m` header line then one `u v` line per edge.
///
/// # Errors
///
/// Propagates any error from the writer.
pub fn write_text<W: Write>(g: &CsrGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Reads the text format produced by [`write_text`].
///
/// # Errors
///
/// Returns [`ReadGraphError::Parse`] on malformed headers or edge lines and
/// [`ReadGraphError::Io`] on reader failures.
pub fn read_text<R: BufRead>(r: R) -> Result<CsrGraph, ReadGraphError> {
    let mut lines = r.lines();
    let header =
        lines.next().ok_or_else(|| ReadGraphError::Parse("missing header line".into()))??;
    let mut parts = header.split_whitespace();
    let n: usize = parse_field(parts.next(), "vertex count")?;
    let m: usize = parse_field(parts.next(), "edge count")?;
    let mut edges = Vec::with_capacity(m);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: u32 = parse_field(parts.next(), "edge endpoint")?;
        let v: u32 = parse_field(parts.next(), "edge endpoint")?;
        if (u as usize) >= n || (v as usize) >= n {
            return Err(ReadGraphError::Parse(format!("edge ({u}, {v}) out of range for n = {n}")));
        }
        edges.push((u, v));
    }
    if edges.len() != m {
        return Err(ReadGraphError::Parse(format!(
            "header declared {m} edges but {} were present",
            edges.len()
        )));
    }
    Ok(CsrGraph::from_edges(n, edges))
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, ReadGraphError> {
    field
        .ok_or_else(|| ReadGraphError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| ReadGraphError::Parse(format!("unparsable {what}")))
}

/// Writes `g` in the compact binary format (`RSG1` magic, little-endian
/// `u64` counts, then `u32` endpoint pairs).
///
/// # Errors
///
/// Propagates any error from the writer.
pub fn write_binary<W: Write>(g: &CsrGraph, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads the binary format produced by [`write_binary`].
///
/// # Errors
///
/// Returns [`ReadGraphError::Parse`] on a bad magic value or truncated
/// payload and [`ReadGraphError::Io`] on reader failures.
pub fn read_binary<R: Read>(mut r: R) -> Result<CsrGraph, ReadGraphError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadGraphError::Parse("bad magic (not an RSG1 file)".into()));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut edges = Vec::with_capacity(m);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        if (u as usize) >= n || (v as usize) >= n {
            return Err(ReadGraphError::Parse(format!("edge ({u}, {v}) out of range for n = {n}")));
        }
        edges.push((u, v));
    }
    Ok(CsrGraph::from_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn text_roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = gen::gnm(40, 100, &mut rng);
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn binary_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::gnm(64, 200, &mut rng);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE----"[..]).unwrap_err();
        assert!(matches!(err, ReadGraphError::Parse(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn text_rejects_out_of_range() {
        let err = read_text("2 1\n0 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadGraphError::Parse(_)));
    }

    #[test]
    fn text_rejects_wrong_count() {
        let err = read_text("3 2\n0 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared"));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::empty(0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap().num_vertices(), 0);
    }
}
