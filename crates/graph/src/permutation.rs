//! Priority permutations: the random order `π` that drives every greedy
//! algorithm in the paper.
//!
//! Following the paper's notation, `π(i) = u` means task `u` is the `i`-th in
//! the execution order and `ℓ(u) = i` is `u`'s *label*. Labels double as
//! scheduler priorities (smaller label = higher priority).

use rand::Rng;
use std::fmt;

/// A bijection between `n` tasks and `n` positions.
///
/// # Examples
///
/// ```
/// use rsched_graph::Permutation;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let pi = Permutation::random(5, &mut StdRng::seed_from_u64(3));
/// for pos in 0..5u32 {
///     assert_eq!(pi.label(pi.task_at(pos)), pos);
/// }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `order[i]` = the task at position `i` (the paper's `π(i)`).
    order: Vec<u32>,
    /// `label[u]` = the position of task `u` (the paper's `ℓ(u)`).
    label: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` tasks.
    pub fn identity(n: usize) -> Self {
        let order: Vec<u32> = (0..n as u32).collect();
        Permutation { label: order.clone(), order }
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        // In-place Fisher–Yates; `gen_range` keeps this reproducible per seed.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Self::from_order(order)
    }

    /// Builds a permutation from an explicit order (`order[i]` = task at
    /// position `i`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn from_order(order: Vec<u32>) -> Self {
        let n = order.len();
        let mut label = vec![u32::MAX; n];
        for (pos, &task) in order.iter().enumerate() {
            let t = task as usize;
            assert!(t < n, "task {} out of range (n = {})", task, n);
            assert!(label[t] == u32::MAX, "task {} appears twice", task);
            label[t] = pos as u32;
        }
        Permutation { order, label }
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the permutation is over zero tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The label (position / priority) of `task` — the paper's `ℓ(task)`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn label(&self, task: u32) -> u32 {
        self.label[task as usize]
    }

    /// The task at position `pos` — the paper's `π(pos)`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[inline]
    pub fn task_at(&self, pos: u32) -> u32 {
        self.order[pos as usize]
    }

    /// The full order, `order[i]` = task at position `i`.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The full label array, `labels()[u]` = position of task `u`.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.label
    }

    /// `true` iff `u` precedes `v` (i.e. `u` has higher priority).
    #[inline]
    pub fn precedes(&self, u: u32, v: u32) -> bool {
        self.label[u as usize] < self.label[v as usize]
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 16 {
            f.debug_tuple("Permutation").field(&self.order).finish()
        } else {
            f.debug_struct("Permutation").field("len", &self.len()).finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        for i in 0..4u32 {
            assert_eq!(p.task_at(i), i);
            assert_eq!(p.label(i), i);
        }
    }

    #[test]
    fn random_is_bijection() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = Permutation::random(100, &mut rng);
        let mut seen = [false; 100];
        for pos in 0..100u32 {
            let t = p.task_at(pos);
            assert!(!seen[t as usize]);
            seen[t as usize] = true;
            assert_eq!(p.label(t), pos);
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Permutation::random(50, &mut StdRng::seed_from_u64(5));
        let b = Permutation::random(50, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn random_differs_across_seeds() {
        let a = Permutation::random(50, &mut StdRng::seed_from_u64(5));
        let b = Permutation::random(50, &mut StdRng::seed_from_u64(6));
        assert_ne!(a, b);
    }

    #[test]
    fn precedes_matches_labels() {
        let p = Permutation::from_order(vec![2, 0, 1]);
        assert!(p.precedes(2, 0));
        assert!(p.precedes(0, 1));
        assert!(!p.precedes(1, 2));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_task_rejected() {
        let _ = Permutation::from_order(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_task_rejected() {
        let _ = Permutation::from_order(vec![0, 3]);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
