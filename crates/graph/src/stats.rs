//! Summary statistics of graph instances, reported by the bench harness.

use crate::CsrGraph;
use std::fmt;

/// Degree summary of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree (`2m / n`).
    pub mean: f64,
    /// Number of degree-0 vertices.
    pub isolated: usize,
}

impl fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deg[min={} max={} mean={:.2} isolated={}]",
            self.min, self.max, self.mean, self.isolated
        )
    }
}

/// Computes [`DegreeStats`] for `g` in one pass.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, isolated: 0 };
    }
    let mut min = usize::MAX;
    let mut max = 0;
    let mut isolated = 0;
    for v in g.vertices() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeStats { min, max, mean: g.avg_degree(), isolated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn star_stats() {
        let s = degree_stats(&gen::star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.isolated, 0);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_counted() {
        let g = CsrGraph::from_edges(4, [(0, 1)]);
        let s = degree_stats(&g);
        assert_eq!(s.isolated, 2);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn empty_graph_stats() {
        let s = degree_stats(&CsrGraph::empty(0));
        assert_eq!(s, DegreeStats { min: 0, max: 0, mean: 0.0, isolated: 0 });
    }

    #[test]
    fn display_nonempty() {
        assert!(!degree_stats(&gen::path(3)).to_string().is_empty());
    }
}
