//! Connected components, used by tests and the bench harness to
//! sanity-check generated instances.

use crate::CsrGraph;

/// The component labeling of `g`: `labels[v]` is the id of `v`'s component
/// (ids are dense, assigned in order of discovery from vertex 0 upward),
/// plus the number of components.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// Whether `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    g.num_vertices() == 0 || connected_components(g).1 == 1
}

/// Size of the largest connected component (0 for the empty graph).
pub fn largest_component_size(g: &CsrGraph) -> usize {
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_is_connected() {
        assert!(is_connected(&gen::path(10)));
        let (_, count) = connected_components(&gen::path(10));
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_graph_components() {
        let (labels, count) = connected_components(&gen::empty(5));
        assert_eq!(count, 5);
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
        assert!(is_connected(&gen::empty(0)));
        assert!(!is_connected(&gen::empty(2)));
    }

    #[test]
    fn two_components() {
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn dense_gnp_is_connected() {
        use rand::{rngs::StdRng, SeedableRng};
        let g = gen::gnp(200, 0.1, &mut StdRng::seed_from_u64(1));
        // p well above the ln(n)/n ≈ 0.027 connectivity threshold.
        assert!(is_connected(&g));
    }

    #[test]
    fn labels_cover_all_vertices() {
        let g = gen::grid2d(4, 5);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(largest_component_size(&g), 20);
    }
}
