//! Doubly-linked-list instances for the list-contraction workload (§2.3).

use rand::Rng;

/// Sentinel marking "no neighbor" in [`ListInstance`] links.
pub const NIL: u32 = u32::MAX;

/// An immutable description of a doubly linked list over elements `0..n`.
///
/// The *elements* are task ids; the *arrangement* (who links to whom) is the
/// instance. List contraction's dependency graph has an edge between every
/// pair of originally adjacent elements.
///
/// # Examples
///
/// ```
/// use rsched_graph::{ListInstance, list::NIL};
///
/// let l = ListInstance::from_order(vec![2, 0, 1]); // list is 2 ↔ 0 ↔ 1
/// assert_eq!(l.head(), 2);
/// assert_eq!(l.succ(2), 0);
/// assert_eq!(l.pred(0), 2);
/// assert_eq!(l.succ(1), NIL);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListInstance {
    succ: Vec<u32>,
    pred: Vec<u32>,
    head: u32,
}

impl ListInstance {
    /// The list `0 ↔ 1 ↔ … ↔ n−1`.
    pub fn new_identity(n: usize) -> Self {
        Self::from_order((0..n as u32).collect())
    }

    /// A list whose arrangement is a uniformly random permutation of `0..n`.
    pub fn new_shuffled<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Self::from_order(order)
    }

    /// Builds a list from the element order (front to back).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn from_order(order: Vec<u32>) -> Self {
        let n = order.len();
        let mut succ = vec![NIL; n];
        let mut pred = vec![NIL; n];
        let mut seen = vec![false; n];
        for &e in &order {
            assert!((e as usize) < n, "element {} out of range", e);
            assert!(!seen[e as usize], "element {} appears twice", e);
            seen[e as usize] = true;
        }
        for w in order.windows(2) {
            succ[w[0] as usize] = w[1];
            pred[w[1] as usize] = w[0];
        }
        let head = order.first().copied().unwrap_or(NIL);
        ListInstance { succ, pred, head }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the list has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// First element, or [`NIL`] for an empty list.
    #[inline]
    pub fn head(&self) -> u32 {
        self.head
    }

    /// Original successor of `e` ([`NIL`] for the last element).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn succ(&self, e: u32) -> u32 {
        self.succ[e as usize]
    }

    /// Original predecessor of `e` ([`NIL`] for the first element).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn pred(&self, e: u32) -> u32 {
        self.pred[e as usize]
    }

    /// The raw successor array (index = element).
    #[inline]
    pub fn succ_slice(&self) -> &[u32] {
        &self.succ
    }

    /// The raw predecessor array (index = element).
    #[inline]
    pub fn pred_slice(&self) -> &[u32] {
        &self.pred
    }

    /// Iterates elements front to back.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let out = cur;
                cur = self.succ[cur as usize];
                Some(out)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_links() {
        let l = ListInstance::new_identity(4);
        assert_eq!(l.head(), 0);
        assert_eq!(l.succ(0), 1);
        assert_eq!(l.pred(0), NIL);
        assert_eq!(l.succ(3), NIL);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shuffled_is_consistent() {
        let mut rng = StdRng::seed_from_u64(8);
        let l = ListInstance::new_shuffled(50, &mut rng);
        let traversal: Vec<u32> = l.iter().collect();
        assert_eq!(traversal.len(), 50);
        let mut sorted = traversal.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50u32).collect::<Vec<_>>());
        // pred/succ are mutual inverses.
        for &e in &traversal {
            let s = l.succ(e);
            if s != NIL {
                assert_eq!(l.pred(s), e);
            }
        }
    }

    #[test]
    fn empty_list() {
        let l = ListInstance::new_identity(0);
        assert!(l.is_empty());
        assert_eq!(l.head(), NIL);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_element_rejected() {
        let _ = ListInstance::from_order(vec![1, 1, 0]);
    }
}
