//! Skewed-degree generators: preferential attachment and R-MAT.
//!
//! The paper's experiments use `G(n, p)`; these families stress the
//! schedulers with heavy-tailed degree distributions in the wider test
//! suite and the ablation benches.

use crate::CsrGraph;
use rand::Rng;

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` vertices, then each new vertex attaches to `attach` existing
/// vertices chosen proportionally to their degree.
///
/// # Panics
///
/// Panics if `attach == 0` or `n < attach + 1`.
pub fn barabasi_albert<R: Rng>(n: usize, attach: usize, rng: &mut R) -> CsrGraph {
    assert!(attach > 0, "attach must be positive");
    assert!(n > attach, "need at least attach + 1 = {} vertices", attach + 1);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * attach);
    // `endpoints` holds one entry per half-edge: sampling uniformly from it
    // is sampling proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * attach);
    for u in 0..attach as u32 + 1 {
        for v in (u + 1)..attach as u32 + 1 {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (attach + 1)..n {
        let v = v as u32;
        let mut chosen: Vec<u32> = Vec::with_capacity(attach);
        while chosen.len() < attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// R-MAT generator: `2^scale` vertices, `edge_count` recursive-quadrant edge
/// samples with quadrant probabilities `(a, b, c, d)`. Duplicates and
/// self-loops are dropped, so the result has *at most* `edge_count` edges.
///
/// # Panics
///
/// Panics if the probabilities are negative or do not sum to ≈ 1.
pub fn rmat<R: Rng>(
    scale: u32,
    edge_count: usize,
    (a, b, c, d): (f64, f64, f64, f64),
    rng: &mut R,
) -> CsrGraph {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0, "negative quadrant probability");
    assert!(((a + b + c + d) - 1.0).abs() < 1e-9, "probabilities must sum to 1");
    let n = 1usize << scale;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ba_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200;
        let attach = 3;
        let g = barabasi_albert(n, attach, &mut rng);
        assert_eq!(g.num_vertices(), n);
        // clique + attach per later vertex (all edges distinct by construction)
        let expected = attach * (attach + 1) / 2 + (n - attach - 1) * attach;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn ba_has_skewed_degrees() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(500, 2, &mut rng);
        assert!(g.max_degree() > 4 * g.avg_degree() as usize);
    }

    #[test]
    #[should_panic(expected = "attach must be positive")]
    fn ba_zero_attach() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = barabasi_albert(10, 0, &mut rng);
    }

    #[test]
    fn rmat_basic() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = rmat(8, 1000, (0.57, 0.19, 0.19, 0.05), &mut rng);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() <= 1000);
        assert!(g.num_edges() > 500); // most samples survive dedup at this density
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_bad_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rmat(4, 10, (0.5, 0.5, 0.5, 0.5), &mut rng);
    }
}
