//! Deterministic structured graph families.

use crate::CsrGraph;

/// The empty graph on `n` vertices.
pub fn empty(n: usize) -> CsrGraph {
    CsrGraph::empty(n)
}

/// The complete graph `K_n`. This is the worst case for the general framework
/// (Theorem 1 is tight on the clique: greedy coloring needs `Θ(nk)`
/// iterations).
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    CsrGraph::from_normalized(n, &edges)
}

/// The path `0 — 1 — … — (n−1)`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    CsrGraph::from_normalized(n, &edges)
}

/// The cycle on `n` vertices (requires `n == 0` or `n >= 3`).
///
/// # Panics
///
/// Panics if `n` is 1 or 2 (no simple cycle exists).
pub fn cycle(n: usize) -> CsrGraph {
    if n == 0 {
        return CsrGraph::empty(0);
    }
    assert!(n >= 3, "a simple cycle needs at least 3 vertices");
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    edges.push((0, n as u32 - 1));
    CsrGraph::from_edges(n, edges)
}

/// The star with center `0` and `n − 1` leaves.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    CsrGraph::from_normalized(n, &edges)
}

/// The `rows × cols` grid graph (4-neighbor).
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// The complete bipartite graph `K_{a,b}` (left part `0..a`, right `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push((u, a as u32 + v));
        }
    }
    CsrGraph::from_edges(a + b, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
        assert_eq!(complete(0).num_vertices(), 0);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
        assert!(c.has_edge(0, 4));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn star_degrees() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        assert!((0..3u32).all(|v| g.degree(v) == 4));
        assert!((3..7u32).all(|v| g.degree(v) == 3));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }
}
