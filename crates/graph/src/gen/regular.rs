//! Near-regular random graphs via the configuration model.

use crate::CsrGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples a *near*-`d`-regular graph on `n` vertices with the configuration
/// model: `d` stubs per vertex are shuffled and paired; self-loops and
/// duplicate pairs are dropped, so a few vertices may end up with degree
/// slightly below `d`.
///
/// The expected number of dropped pairs is `O(d²)`, independent of `n`, so
/// for `d ≪ √n` the graph is regular up to a vanishing fraction of edges —
/// sufficient for the scheduler experiments, which only need controlled,
/// homogeneous degrees. (Exact uniform d-regular sampling would require
/// rejection over the whole pairing and is not needed here.)
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> CsrGraph {
    assert!((n * d).is_multiple_of(2), "n * d must be even to pair stubs");
    assert!(d < n, "degree must be < n");
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for v in 0..n as u32 {
        for _ in 0..d {
            stubs.push(v);
        }
    }
    stubs.shuffle(rng);
    let edges = stubs.chunks_exact(2).map(|c| (c[0], c[1]));
    CsrGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degrees_close_to_target() {
        let mut rng = StdRng::seed_from_u64(4);
        let (n, d) = (1000, 6);
        let g = near_regular(n, d, &mut rng);
        assert_eq!(g.num_vertices(), n);
        assert!(g.vertices().all(|v| g.degree(v) <= d));
        // At most O(d^2) pairs dropped in expectation; allow generous slack.
        assert!(g.num_edges() >= n * d / 2 - 10 * d * d);
        assert!((g.avg_degree() - d as f64).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_stub_count_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = near_regular(3, 3, &mut rng);
    }

    #[test]
    fn zero_degree() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = near_regular(5, 0, &mut rng);
        assert_eq!(g.num_edges(), 0);
    }
}
