//! Random and structured graph generators.
//!
//! The paper evaluates on Erdős–Rényi graphs ([`gnp`], [`gnm`]); the
//! structured and power-law families here back the wider test suite and the
//! ablation benches (e.g. the clique worst case of Theorem 1 uses
//! [`complete`]).

mod er;
mod powerlaw;
mod regular;
mod structured;

pub use er::{gnm, gnp};
pub use powerlaw::{barabasi_albert, rmat};
pub use regular::near_regular;
pub use structured::{complete, complete_bipartite, cycle, empty, grid2d, path, star};
