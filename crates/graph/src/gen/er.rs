//! Erdős–Rényi generators: `G(n, p)` and `G(n, m)`.

use crate::CsrGraph;
use rand::Rng;
use std::collections::HashSet;

/// Samples `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`.
///
/// Uses the Batagelj–Brandes skip-sampling algorithm, so the running time is
/// `O(n + m)` rather than `O(n²)`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
///
/// # Examples
///
/// ```
/// use rsched_graph::gen::gnp;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let g = gnp(100, 0.05, &mut StdRng::seed_from_u64(1));
/// assert_eq!(g.num_vertices(), 100);
/// ```
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p = {p} must be in [0, 1]");
    if n == 0 || p == 0.0 {
        return CsrGraph::empty(n);
    }
    if p >= 1.0 {
        return super::complete(n);
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let log_q = (1.0 - p).ln();
    // Walk the pairs (w, v) with w < v in row-major order, jumping a
    // geometrically distributed number of non-edges each step.
    let mut v: u64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r: f64 = rng.gen::<f64>(); // in [0, 1)
        let skip = ((1.0 - r).ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v as i64 && (v as usize) < n {
            w -= v as i64;
            v += 1;
        }
        if (v as usize) < n {
            edges.push((w as u32, v as u32));
        }
    }
    // Skip sampling emits pairs sorted by (v, w); normalize to (min, max) and
    // re-sort for the fast CSR path.
    edges.sort_unstable();
    CsrGraph::from_normalized(n, &edges)
}

/// Samples `G(n, m)`: a graph drawn uniformly among all graphs with exactly
/// `n` vertices and `m` distinct edges.
///
/// This is the model Table 1 of the paper sweeps (`n ∈ {10³, 10⁴}`,
/// `m ∈ {10⁴, 3·10⁴, 10⁵}`).
///
/// # Panics
///
/// Panics if `m` exceeds `n·(n−1)/2`.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let total: u64 = n as u64 * (n as u64 - if n == 0 { 0 } else { 1 }) / 2;
    assert!((m as u64) <= total, "m = {m} exceeds the {total} possible edges on {n} vertices");
    if m == 0 {
        return CsrGraph::empty(n);
    }
    // Rejection-sample distinct pairs. For m within half the total the
    // expected number of retries is < 2x; denser requests go through the
    // complement.
    if (m as u64) * 2 > total {
        return dense_gnm(n, m, total, rng);
    }
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        let key = (u as u64) * n as u64 + v as u64;
        if seen.insert(key) {
            edges.push((u, v));
        }
    }
    edges.sort_unstable();
    CsrGraph::from_normalized(n, &edges)
}

/// `G(n, m)` for `m > total/2`: sample the complement instead.
fn dense_gnm<R: Rng>(n: usize, m: usize, total: u64, rng: &mut R) -> CsrGraph {
    let holes = (total - m as u64) as usize;
    let mut excluded: HashSet<u64> = HashSet::with_capacity(holes * 2);
    while excluded.len() < holes {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        excluded.insert((u as u64) * n as u64 + v as u64);
    }
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if !excluded.contains(&((u as u64) * n as u64 + v as u64)) {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_normalized(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, m) in &[(10usize, 0usize), (10, 45), (100, 500), (1000, 1)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), m, "n={n} m={m}");
        }
    }

    #[test]
    fn gnm_dense_path() {
        let mut rng = StdRng::seed_from_u64(7);
        // 40 of 45 possible edges on 10 vertices: exercises the complement path.
        let g = gnm(10, 40, &mut rng);
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_too_many_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = gnm(4, 7, &mut rng);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(gnp(20, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp(20, 1.0, &mut rng).num_edges(), 190);
        assert_eq!(gnp(0, 0.5, &mut rng).num_vertices(), 0);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let p = 0.01;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.num_edges() as f64;
        // 5 sigma of a binomial with ~20k trials-worth of variance.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!((m - expected).abs() < 5.0 * sigma, "m = {m}, expected ≈ {expected}");
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = gnm(100, 300, &mut StdRng::seed_from_u64(3));
        let b = gnm(100, 300, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let c = gnp(100, 0.1, &mut StdRng::seed_from_u64(3));
        let d = gnp(100, 0.1, &mut StdRng::seed_from_u64(3));
        assert_eq!(c, d);
    }
}
