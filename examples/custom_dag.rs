//! Bring-your-own algorithm: the fully generic explicit-DAG entry point
//! (§2.2 of the paper, verbatim). Hand the framework any conflict graph, a
//! priority permutation to orient it, and a `Process(v)` closure — the
//! closure's view of its predecessors is scheduler-independent.
//!
//! Here: dependency-chain depth (the "iteration depth" the parallelism
//! literature studies) computed over a random DAG, identical under an exact
//! heap, a heavily relaxed scheduler, and a deterministic round-robin one.
//!
//! Run with: `cargo run --release --example custom_dag`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::explicit_dag::ExplicitDagTasks;
use rsched::core::framework::run_relaxed;
use rsched::core::TaskId;
use rsched::graph::{gen, Permutation};
use rsched::queues::exact::BinaryHeapScheduler;
use rsched::queues::relaxed::{RoundRobinTopK, SimMultiQueue};
use rsched::queues::PriorityScheduler;

fn chain_depths<S: PriorityScheduler<TaskId>>(
    g: &rsched::graph::CsrGraph,
    pi: &Permutation,
    sched: S,
) -> (Vec<u32>, u64) {
    let mut depth = vec![0u32; g.num_vertices()];
    let stats = {
        let tasks = ExplicitDagTasks::new(g, pi, |v, preds| {
            depth[v as usize] = preds.iter().map(|&u| depth[u as usize] + 1).max().unwrap_or(0);
        });
        run_relaxed(tasks, pi, sched).1
    };
    (depth, stats.extra_iterations())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let n = 50_000;
    let g = gen::gnm(n, 500_000, &mut rng);
    let pi = Permutation::random(n, &mut rng);

    let (exact, _) = chain_depths(&g, &pi, BinaryHeapScheduler::new());
    let max_depth = exact.iter().max().copied().unwrap_or(0);
    println!(
        "random G({n}, 500k) oriented by a random permutation: dependency depth = {max_depth}"
    );
    println!("(the paper's premise: greedy dependency DAGs are shallow — O(log n) whp)");

    let (relaxed, extra) = chain_depths(&g, &pi, SimMultiQueue::new(64, StdRng::seed_from_u64(1)));
    assert_eq!(relaxed, exact);
    println!("64-relaxed MultiQueue model: identical depths, {extra} extra iterations");

    let (rr, extra) = chain_depths(&g, &pi, RoundRobinTopK::new(64));
    assert_eq!(rr, exact);
    println!("deterministic round-robin top-64: identical depths, {extra} extra iterations");

    println!("\nAny DAG + any Process(v) closure runs deterministically under relaxation.");
}
