//! Greedy vertex coloring through the relaxed framework (the paper's
//! Algorithm 3 inside Algorithm 2), demonstrating the Theorem 1 trade-off:
//! the wasted work scales with the dependency density `m/n` and the
//! relaxation `k`, while the coloring itself never changes.
//!
//! Run with: `cargo run --release --example graph_coloring`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::coloring::{greedy_coloring, verify_coloring, ColoringTasks};
use rsched::core::framework::run_relaxed;
use rsched::graph::{gen, Permutation};
use rsched::queues::relaxed::TopKUniform;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 20_000;

    for &density in &[2usize, 10, 50] {
        let g = gen::gnm(n, density * n, &mut rng);
        let pi = Permutation::random(n, &mut rng);
        let expected = greedy_coloring(&g, &pi);
        let palette = expected.iter().max().unwrap() + 1;

        println!("G(n={n}, m={}): greedy palette = {palette} colors", density * n);
        for &k in &[4usize, 16, 64] {
            let sched = TopKUniform::new(k, StdRng::seed_from_u64(99));
            let (colors, stats) = run_relaxed(ColoringTasks::new(&g, &pi), &pi, sched);
            assert!(verify_coloring(&g, &colors));
            assert_eq!(colors, expected, "coloring is deterministic under relaxation");
            println!(
                "  k={k:>3}: extra iterations = {:>7}  (per edge: {:.4})",
                stats.extra_iterations(),
                stats.extra_iterations() as f64 / (density * n) as f64
            );
        }
    }
    println!("\nNote the per-edge waste is ≈ constant for fixed k: Theorem 1's O(m/n)·poly(k).");
}
