//! Greedy maximal matching through the relaxed framework, both the direct
//! edge-task formulation and the paper's line-graph reduction (§2.4), which
//! must agree exactly.
//!
//! Run with: `cargo run --release --example maximal_matching`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::matching::{
    greedy_matching, matching_via_line_graph, verify_matching, MatchingInstance, MatchingTasks,
};
use rsched::core::framework::run_relaxed;
use rsched::graph::{gen, Permutation};
use rsched::queues::relaxed::SimMultiQueue;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = gen::gnm(10_000, 60_000, &mut rng);
    let inst = MatchingInstance::new(&g);
    let pi = Permutation::random(inst.num_edges(), &mut rng);

    let expected = greedy_matching(&inst, &pi);
    let matched = expected.iter().filter(|&&b| b).count();
    println!(
        "graph: n = {}, m = {} — greedy maximal matching has {matched} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Relaxed execution: same matching, bounded extra work (Theorem 2 via
    // MIS on the line graph).
    for &k in &[4usize, 16, 64] {
        let sched = SimMultiQueue::new(k, StdRng::seed_from_u64(3));
        let (m, stats) = run_relaxed(MatchingTasks::new(&inst, &pi), &pi, sched);
        assert!(verify_matching(&inst, &m));
        assert_eq!(m, expected);
        println!("  k={k:>3}: extra iterations = {}", stats.extra_iterations());
    }

    // Cross-check the §2.4 reduction on a smaller instance (the line graph
    // is Θ(Σ deg²) so we keep it modest).
    let small = gen::gnm(500, 1_500, &mut rng);
    let small_inst = MatchingInstance::new(&small);
    let small_pi = Permutation::random(small_inst.num_edges(), &mut rng);
    let direct = greedy_matching(&small_inst, &small_pi);
    let via_lg = matching_via_line_graph(&small, &small_pi);
    assert_eq!(direct, via_lg);
    println!("\nline-graph reduction cross-check passed on G(500, 1500)");
}
