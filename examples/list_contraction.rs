//! List contraction (§2.3): a non-graph workload with an `m = O(n)`-sparse
//! dependency structure, where relaxation is essentially free.
//!
//! Run with: `cargo run --release --example list_contraction`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::list_contraction::{sequential_contraction, ContractionTasks};
use rsched::core::framework::run_relaxed;
use rsched::graph::{ListInstance, Permutation};
use rsched::queues::relaxed::SimMultiQueue;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let n = 200_000;
    let list = ListInstance::new_shuffled(n, &mut rng);
    let pi = Permutation::random(n, &mut rng);

    // Ground truth: each element's (prev, next) at its contraction time.
    let expected = sequential_contraction(&list, &pi);

    for &k in &[4usize, 16, 64, 256] {
        let sched = SimMultiQueue::new(k, StdRng::seed_from_u64(2));
        let (records, stats) = run_relaxed(ContractionTasks::new(&list, &pi), &pi, sched);
        assert_eq!(records, expected, "contraction records are deterministic");
        println!(
            "k={k:>4}: {} extra iterations on {} elements ({:.5}% waste)",
            stats.extra_iterations(),
            n,
            100.0 * stats.extra_iterations() as f64 / n as f64
        );
    }
    println!("\nThe dependency graph is a path (m = n − 1): Theorem 1 gives O(poly(k)/1)");
    println!("waste per element-pair — negligible for k ≪ n, as observed.");
}
