//! The streaming service front-end: producers push requests into a *live*
//! sharded scheduler while workers drain it — the long-lived shape of the
//! system, instead of prefill-then-drain.
//!
//! Two workloads:
//!
//! 1. streamed incremental connectivity — four producer threads race
//!    striped slices of an edge list through two bounded ingestion queues
//!    under a tight shard watermark; the union-find absorbs them in
//!    whatever order they arrive and still produces the canonical labels;
//! 2. natively streaming SSSP — a producer seeds one relaxation request
//!    and the handler floods the rest of the graph as follow-up submits.
//!
//! Both runs end in a graceful drain audited by the exactly-once ledger.
//!
//! Run with: `cargo run --release --example streaming_service`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::incremental::connectivity::{components, ConcurrentConnectivity};
use rsched::core::algorithms::sssp::dijkstra;
use rsched::core::service::{
    run_service, AlgorithmHandler, Producer, ProducerFn, ServiceConfig, SsspHandler,
};
use rsched::graph::{gen, WeightedCsr};
use rsched::queues::concurrent::LockFreeMultiQueue;
use rsched::queues::sharded::ShardedScheduler;

fn sched(shards: usize) -> ShardedScheduler<LockFreeMultiQueue<u32>> {
    ShardedScheduler::from_fn(shards, |_| LockFreeMultiQueue::new(4))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(6);

    // --- streamed incremental connectivity -------------------------------
    let n = 50_000;
    let edges = gen::gnm(n, 150_000, &mut rng).edge_list();
    let m = edges.len() as u32;
    let expected = components(n, &edges);

    let alg = ConcurrentConnectivity::new(n, &edges);
    let handler = AlgorithmHandler(&alg);
    let q = sched(3);
    let config = ServiceConfig {
        workers: 4,
        batch_size: 8,
        ingest_queues: 2,
        queue_capacity: 256,
        flush_batch: 64,
        shard_watermark: 4_096,
        pump_threads: 2,
    };
    // Four producers stream striped slices: arrival order at the scheduler
    // is racy by construction, and full queues block their producer — the
    // backpressure boundary.
    let producers: Vec<ProducerFn<'_>> = (0..4u32)
        .map(|p| {
            Box::new(move |prod: Producer<'_>| {
                for e in (p..m).step_by(4) {
                    prod.push(u64::from(e), e).unwrap();
                }
            }) as ProducerFn<'_>
        })
        .collect();
    let stats = run_service(&handler, &q, &config, producers);
    assert!(stats.exactly_once(), "ledger out of balance: {stats:?}");
    assert_eq!(stats.accepted, u64::from(m));
    assert_eq!(alg.into_labels(), expected, "streamed labels diverged");
    println!(
        "connectivity: {} edges streamed by 4 producers, {} pops ({} obsolete) by {} workers in {:?}",
        stats.accepted, stats.total_pops, stats.obsolete, stats.workers, stats.elapsed
    );

    // --- natively streaming SSSP -----------------------------------------
    let g = gen::gnm(20_000, 120_000, &mut rng);
    let wg = WeightedCsr::with_uniform_weights(&g, 1, 100, &mut rng);
    let exact = dijkstra(&wg, 0);

    let handler = SsspHandler::new(&wg);
    let q = sched(3);
    let config = ServiceConfig { workers: 4, ..Default::default() };
    let (seed_priority, seed_task) = handler.request(0, 0);
    let producers: Vec<ProducerFn<'_>> = vec![Box::new(move |prod: Producer<'_>| {
        prod.push(seed_priority, seed_task).unwrap();
    })];
    let stats = run_service(&handler, &q, &config, producers);
    assert!(stats.exactly_once(), "ledger out of balance: {stats:?}");
    assert_eq!(handler.into_dist(), exact, "streamed SSSP diverged from Dijkstra");
    println!(
        "sssp: 1 seeded request flooded into {} accepted relaxations, distances exact in {:?}",
        stats.accepted, stats.elapsed
    );

    println!("\nBoth drains ledger-balanced: every accepted request decided exactly once.");
}
