//! Knuth shuffle through the relaxed framework: generating a uniformly
//! random permutation with parallel-friendly scheduling, deterministically
//! reproducing the sequential Fisher–Yates output for the same swap targets.
//!
//! Run with: `cargo run --release --example knuth_shuffle`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::knuth_shuffle::{
    fisher_yates, random_targets, shuffle_priorities, ShuffleTasks,
};
use rsched::core::framework::run_relaxed;
use rsched::queues::relaxed::SimMultiQueue;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let n = 500_000;

    // The algorithm's randomness is in the swap targets H[i] ∈ [0, i]; the
    // priority order (descending index) is fixed.
    let targets = random_targets(n, &mut rng);
    let pi = shuffle_priorities(n);
    let expected = fisher_yates(&targets);

    for &k in &[4usize, 32, 256] {
        let sched = SimMultiQueue::new(k, StdRng::seed_from_u64(8));
        let (shuffled, stats) = run_relaxed(ShuffleTasks::new(targets.clone()), &pi, sched);
        assert_eq!(shuffled, expected, "the shuffle is deterministic given H");
        println!(
            "k={k:>4}: {} extra iterations over {} swaps ({:.5}% waste)",
            stats.extra_iterations(),
            n,
            100.0 * stats.extra_iterations() as f64 / n as f64
        );
    }

    // Sanity: the output is a permutation.
    let mut check = expected.clone();
    check.sort_unstable();
    assert!(check.iter().enumerate().all(|(i, &x)| i as u32 == x));
    println!("\noutput verified to be a permutation of 0..{n}");
    println!("dependency chains have ≤2 direct predecessors per task (m = O(n)),");
    println!("so waste is tiny — the sparse regime of Theorem 1.");
}
