//! Relaxed single-source shortest paths: the classic relaxed-scheduler
//! workload (outside the random-permutation class of Theorems 1–2, but
//! correctness-preserving under any relaxation).
//!
//! Run with: `cargo run --release --example sssp`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::sssp::{concurrent_sssp, dijkstra, relaxed_sssp, UNREACHABLE};
use rsched::graph::{gen, WeightedCsr};
use rsched::queues::concurrent::MultiQueue;
use rsched::queues::relaxed::SimMultiQueue;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let g = gen::gnm(100_000, 800_000, &mut rng);
    let wg = WeightedCsr::with_uniform_weights(&g, 1, 100, &mut rng);
    let source = 0u32;

    let exact = dijkstra(&wg, source);
    let reached = exact.iter().filter(|&&d| d != UNREACHABLE).count();
    println!(
        "Dijkstra on G(n={}, m={}): {reached} reachable vertices",
        wg.num_vertices(),
        wg.num_edges()
    );

    // Sequential relaxed: same distances, some stale re-expansions.
    for &q in &[4usize, 16, 64] {
        let sched = SimMultiQueue::new(q, StdRng::seed_from_u64(3));
        let (dist, stats) = relaxed_sssp(&wg, source, sched);
        assert_eq!(dist, exact, "label-correcting converges to exact distances");
        println!(
            "  sim MultiQueue q={q:>2}: {} pops ({} stale re-expansions)",
            stats.pops, stats.stale
        );
    }

    // Concurrent relaxed over the real MultiQueue.
    for threads in [1usize, 2] {
        let sched: MultiQueue<u32> = MultiQueue::for_threads(threads);
        let dist = concurrent_sssp(&wg, source, &sched, threads);
        assert_eq!(dist, exact);
        println!("  concurrent MultiQueue, {threads} thread(s): distances verified");
    }
    println!("\nRelaxation costs stale pops, never wrong distances.");
}
