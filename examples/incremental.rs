//! Incremental algorithms under a relaxed scheduler: insert edges into a
//! union-find and points into a Delaunay triangulation through a simulated
//! MultiQueue, and confirm the incremental-algorithms claim (arXiv
//! 2003.09363) — out-of-order insertion costs bounded extra work and never
//! correctness.
//!
//! Run with: `cargo run --release --example incremental`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::incremental::connectivity::{components, ConnectivityTasks};
use rsched::core::algorithms::incremental::delaunay::{verify_delaunay, DelaunayTasks};
use rsched::core::algorithms::incremental::insertion_order;
use rsched::core::framework::run_relaxed;
use rsched::graph::gen;
use rsched::graph::geom::uniform_square;
use rsched::queues::relaxed::SimMultiQueue;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Incremental connectivity: 50k edges into a union-find over 20k
    // vertices, popped by a 16-relaxed scheduler in whatever order it
    // likes. Unions commute, so relaxation is completely free here: zero
    // failed deletes, and the already-connected ("wasted") pops are the
    // same count every order.
    let n = 20_000;
    let edges = gen::gnm(n, 50_000, &mut rng).edge_list();
    let pi = insertion_order(edges.len(), 1);
    let sched = SimMultiQueue::new(16, StdRng::seed_from_u64(2));
    let ((labels, tree_edges), stats) = run_relaxed(ConnectivityTasks::new(n, &edges), &pi, sched);
    assert_eq!(labels, components(n, &edges), "components must match the sequential run");
    println!(
        "connectivity: {} edges → {tree_edges} tree edges, {} already-connected pops, {stats}",
        edges.len(),
        stats.obsolete
    );

    // Randomized incremental Delaunay: here insertions genuinely conflict
    // (a point depends on the earlier points in its cavity), so the relaxed
    // order costs some failed deletes — but the count stays poly(k), and
    // the result is a verified Delaunay triangulation either way.
    let pts = uniform_square(3_000, 1 << 18, &mut rng);
    let pi = insertion_order(pts.len(), 3);
    let sched = SimMultiQueue::new(16, StdRng::seed_from_u64(4));
    let (out, stats) = run_relaxed(DelaunayTasks::new(&pts, &pi), &pi, sched);
    assert!(verify_delaunay(&pts, &out.triangles), "empty-circumcircle check failed");
    println!(
        "delaunay: {} points → {} triangles ({} cells built, {} torn down), {stats}",
        pts.len(),
        out.triangles.len(),
        out.created,
        out.destroyed
    );
    println!("both outputs verified: relaxation cost work, never correctness");
}
