//! The paper's §4 headline experiment in miniature: concurrent MIS with a
//! relaxed MultiQueue scheduler vs the exact FAA-queue scheduler vs the
//! sequential baseline, on one graph.
//!
//! Run with: `cargo run --release --example concurrent_mis`
//! (See `cargo run --release -p rsched-bench --bin figure2` for the full
//! three-class reproduction of Figure 2.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::mis::{greedy_mis, ConcurrentMis};
use rsched::core::framework::{fill_scheduler, run_concurrent, run_exact_concurrent};
use rsched::core::TaskId;
use rsched::graph::{gen, Permutation};
use rsched::queues::concurrent::{LockFreeMultiQueue, MultiQueue, SprayList};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let n = 300_000;
    let g = gen::gnm(n, 3_000_000, &mut rng);
    let pi = Permutation::random(n, &mut rng);

    let t = Instant::now();
    let expected = greedy_mis(&g, &pi);
    let seq = t.elapsed();
    println!("sequential greedy: {:?} (MIS size {})", seq, expected.iter().filter(|&&b| b).count());

    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2);
    println!("running with {threads} threads\n");

    // Relaxed: lock-based MultiQueue (the paper's main scheduler).
    let alg = ConcurrentMis::new(&g, &pi);
    let sched: MultiQueue<TaskId> = MultiQueue::for_threads(threads);
    fill_scheduler(&sched, &pi);
    let stats = run_concurrent(&alg, &pi, &sched, threads);
    assert_eq!(alg.into_output(), expected);
    println!("relaxed MultiQueue:        {stats}");

    // Relaxed: the lock-free MultiQueue over Harris lists (§4's variant).
    let alg = ConcurrentMis::new(&g, &pi);
    let sched: LockFreeMultiQueue<TaskId> =
        LockFreeMultiQueue::prefilled(4 * threads, (0..n as u32).map(|v| (pi.label(v) as u64, v)));
    let stats = run_concurrent(&alg, &pi, &sched, threads);
    assert_eq!(alg.into_output(), expected);
    println!("relaxed LF-MultiQueue:     {stats}");

    // Relaxed: the SprayList.
    let alg = ConcurrentMis::new(&g, &pi);
    let sched: SprayList<TaskId> = SprayList::new(threads);
    fill_scheduler(&sched, &pi);
    let stats = run_concurrent(&alg, &pi, &sched, threads);
    assert_eq!(alg.into_output(), expected);
    println!("relaxed SprayList:         {stats}");

    // Exact: FAA array queue with predecessor backoff.
    let alg = ConcurrentMis::new(&g, &pi);
    let stats = run_exact_concurrent(&alg, &pi, threads);
    assert_eq!(alg.into_output(), expected);
    println!("exact FAA queue + backoff: {stats}");

    println!("\nAll four produce the identical deterministic MIS.");
}
