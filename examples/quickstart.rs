//! Quickstart: run greedy MIS through a relaxed scheduler and confirm the
//! two claims of the paper — the output is *deterministic* (identical to the
//! sequential greedy) and the wasted work is *tiny* (`poly(k)`, independent
//! of the graph).
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::mis::{greedy_mis, verify_mis, MisTasks};
use rsched::core::framework::run_relaxed;
use rsched::graph::{gen, Permutation};
use rsched::queues::relaxed::SimMultiQueue;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A random graph with 100k vertices and 1M edges, and a random priority
    // permutation π — the instance family of the paper's Table 1.
    let n = 100_000;
    let g = gen::gnm(n, 1_000_000, &mut rng);
    let pi = Permutation::random(n, &mut rng);
    println!("graph: {:?}", g);

    // The ground truth: sequential greedy MIS in π order.
    let expected = greedy_mis(&g, &pi);
    let mis_size = expected.iter().filter(|&&b| b).count();
    println!("sequential greedy MIS size: {mis_size}");

    // The same computation through a 16-relaxed scheduler (a simulated
    // MultiQueue with 16 internal queues).
    let sched = SimMultiQueue::new(16, StdRng::seed_from_u64(7));
    let (mis, stats) = run_relaxed(MisTasks::new(&g, &pi), &pi, sched);

    assert!(verify_mis(&g, &mis), "output must be a maximal independent set");
    assert_eq!(mis, expected, "relaxation must not change the output");

    println!("relaxed run:  {stats}");
    println!(
        "cost of relaxation: {} extra iterations on {} tasks ({:.4}% overhead) — poly(k), not O(n)",
        stats.extra_iterations(),
        n,
        100.0 * stats.extra_iterations() as f64 / n as f64
    );
}
