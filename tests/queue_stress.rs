//! Heavier concurrent stress for the schedulers, via one generic harness:
//! under churn from multiple producers and consumers, every inserted element
//! is popped exactly once and nothing is lost.

use rsched::queues::concurrent::{LockFreeMultiQueue, MultiQueue, SprayList};
use rsched::queues::ConcurrentScheduler;
use std::collections::HashSet;
use std::sync::Mutex;

/// `producers` threads insert disjoint ranges while `consumers` threads pop;
/// afterwards the main thread drains. Checks exact-once delivery.
fn churn<S: ConcurrentScheduler<u64>>(sched: &S, producers: u64, consumers: usize, per: u64) {
    let collected = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..producers {
            let sched = &sched;
            s.spawn(move || {
                for i in 0..per {
                    let v = t * per + i;
                    sched.insert(v, v);
                }
            });
        }
        for _ in 0..consumers {
            let sched = &sched;
            let collected = &collected;
            s.spawn(move || {
                let mut local = Vec::new();
                let mut misses = 0;
                // Keep popping until we see a stretch of emptiness (the
                // producers may still be running).
                while misses < 200 {
                    match sched.pop() {
                        Some((p, v)) => {
                            assert_eq!(p, v, "payload corrupted");
                            local.push(v);
                            misses = 0;
                        }
                        None => {
                            misses += 1;
                            std::hint::spin_loop();
                        }
                    }
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut all = collected.into_inner().unwrap();
    while let Some((_, v)) = sched.pop() {
        all.push(v);
    }
    let total = (producers * per) as usize;
    assert_eq!(all.len(), total, "lost or duplicated elements");
    let set: HashSet<u64> = all.into_iter().collect();
    assert_eq!(set.len(), total, "duplicate pops detected");
}

#[test]
fn multiqueue_churn() {
    let q: MultiQueue<u64> = MultiQueue::new(8);
    churn(&q, 3, 3, 20_000);
}

#[test]
fn lock_free_multiqueue_churn() {
    let q: LockFreeMultiQueue<u64> = LockFreeMultiQueue::new(8);
    churn(&q, 3, 3, 5_000);
}

#[test]
fn spraylist_churn() {
    let q: SprayList<u64> = SprayList::new(4);
    churn(&q, 3, 3, 5_000);
}

#[test]
fn multiqueue_respects_rough_priority_under_contention() {
    // After concurrent prefill, the first pops should come from the global
    // front region — the rank bound in action.
    let q: MultiQueue<u64> = MultiQueue::new(8);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let q = &q;
            s.spawn(move || {
                for i in 0..25_000u64 {
                    let v = i * 4 + t; // interleaved priorities
                    q.insert(v, v);
                }
            });
        }
    });
    for _ in 0..100 {
        let (p, _) = q.pop().unwrap();
        assert!(p < 10_000, "pop of rank ≈ {p} from a 100k-element MultiQueue with 8 queues");
    }
}

#[test]
fn spraylist_heavy_single_consumer() {
    // Pop-only load after a big prefill: exercises spray walks over a
    // shrinking list, including the dead-prefix cleanup path.
    let q: SprayList<u64> = SprayList::new(8);
    for v in 0..50_000u64 {
        q.insert(v, v);
    }
    let mut seen = HashSet::new();
    while let Some((_, v)) = q.pop() {
        assert!(seen.insert(v));
    }
    assert_eq!(seen.len(), 50_000);
}
