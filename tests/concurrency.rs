//! Concurrent executor integration: every workload × every concurrent
//! scheduler × several thread counts must reproduce the sequential output.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::coloring::{greedy_coloring, ConcurrentColoring};
use rsched::core::algorithms::knuth_shuffle::{
    fisher_yates, random_targets, shuffle_priorities, ConcurrentShuffle,
};
use rsched::core::algorithms::list_contraction::{sequential_contraction, ConcurrentContraction};
use rsched::core::algorithms::matching::{greedy_matching, ConcurrentMatching, MatchingInstance};
use rsched::core::algorithms::mis::{greedy_mis, ConcurrentMis};
use rsched::core::framework::{
    fill_scheduler, run_concurrent, run_exact_concurrent, ConcurrentAlgorithm,
};
use rsched::core::TaskId;
use rsched::graph::{gen, ListInstance, Permutation};
use rsched::queues::concurrent::{LockFreeMultiQueue, MultiQueue, SprayList};

const THREADS: &[usize] = &[1, 2, 4];

/// Runs `alg` under all three relaxed concurrent schedulers plus the exact
/// FAA path, checking output each time via `extract`.
fn run_all_schedulers<A, F, O>(make_alg: &dyn Fn() -> A, pi: &Permutation, extract: F, expected: &O)
where
    A: ConcurrentAlgorithm,
    F: Fn(A) -> O,
    O: PartialEq + std::fmt::Debug,
{
    for &threads in THREADS {
        {
            let alg = make_alg();
            let sched: MultiQueue<TaskId> = MultiQueue::for_threads(threads);
            fill_scheduler(&sched, pi);
            let stats = run_concurrent(&alg, pi, &sched, threads);
            assert_eq!(alg.remaining(), 0);
            assert_eq!(&extract(alg), expected, "MultiQueue threads={threads}");
            // Dead-marking algorithms may finish with tasks still queued
            // (decided by a neighbor, never popped), so total pops can be
            // below n; the accounting identity must hold regardless.
            assert_eq!(stats.total_pops, stats.processed + stats.wasted + stats.obsolete);
        }
        {
            let alg = make_alg();
            let sched: LockFreeMultiQueue<TaskId> = LockFreeMultiQueue::prefilled(
                4 * threads,
                (0..pi.len() as u32).map(|v| (pi.label(v) as u64, v)),
            );
            let _ = run_concurrent(&alg, pi, &sched, threads);
            assert_eq!(&extract(alg), expected, "LF-MultiQueue threads={threads}");
        }
        {
            let alg = make_alg();
            let sched: SprayList<TaskId> = SprayList::new(threads);
            fill_scheduler(&sched, pi);
            let _ = run_concurrent(&alg, pi, &sched, threads);
            assert_eq!(&extract(alg), expected, "SprayList threads={threads}");
        }
        {
            let alg = make_alg();
            let stats = run_exact_concurrent(&alg, pi, threads);
            assert_eq!(&extract(alg), expected, "exact FAA threads={threads}");
            assert_eq!(stats.total_pops, pi.len() as u64);
        }
    }
}

#[test]
fn concurrent_mis_all_schedulers() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = gen::gnm(2_000, 12_000, &mut rng);
    let pi = Permutation::random(2_000, &mut rng);
    let expected = greedy_mis(&g, &pi);
    run_all_schedulers(&|| ConcurrentMis::new(&g, &pi), &pi, |a| a.into_output(), &expected);
}

#[test]
fn concurrent_mis_on_adversarial_structures() {
    let mut rng = StdRng::seed_from_u64(2);
    for g in [gen::complete(60), gen::star(800), gen::path(1_000)] {
        let pi = Permutation::random(g.num_vertices(), &mut rng);
        let expected = greedy_mis(&g, &pi);
        run_all_schedulers(&|| ConcurrentMis::new(&g, &pi), &pi, |a| a.into_output(), &expected);
    }
}

#[test]
fn concurrent_coloring_all_schedulers() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = gen::gnm(1_500, 9_000, &mut rng);
    let pi = Permutation::random(1_500, &mut rng);
    let expected = greedy_coloring(&g, &pi);
    run_all_schedulers(&|| ConcurrentColoring::new(&g, &pi), &pi, |a| a.into_output(), &expected);
}

#[test]
fn concurrent_matching_all_schedulers() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = gen::gnm(800, 4_000, &mut rng);
    let inst = MatchingInstance::new(&g);
    let pi = Permutation::random(inst.num_edges(), &mut rng);
    let expected = greedy_matching(&inst, &pi);
    run_all_schedulers(
        &|| ConcurrentMatching::new(&inst, &pi),
        &pi,
        |a| a.into_output(),
        &expected,
    );
}

#[test]
fn concurrent_list_contraction_all_schedulers() {
    let mut rng = StdRng::seed_from_u64(5);
    let list = ListInstance::new_shuffled(2_000, &mut rng);
    let pi = Permutation::random(2_000, &mut rng);
    let expected = sequential_contraction(&list, &pi);
    run_all_schedulers(
        &|| ConcurrentContraction::new(&list, &pi),
        &pi,
        |a| a.into_output(),
        &expected,
    );
}

#[test]
fn concurrent_shuffle_all_schedulers() {
    let mut rng = StdRng::seed_from_u64(6);
    let targets = random_targets(2_000, &mut rng);
    let pi = shuffle_priorities(2_000);
    let expected = fisher_yates(&targets);
    run_all_schedulers(
        &|| ConcurrentShuffle::new(targets.clone()),
        &pi,
        |a| a.into_output(),
        &expected,
    );
}

#[test]
fn repeated_runs_are_stable() {
    // Hammer one configuration repeatedly to catch rare interleavings.
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnm(500, 5_000, &mut rng);
    let pi = Permutation::random(500, &mut rng);
    let expected = greedy_mis(&g, &pi);
    for _ in 0..20 {
        let alg = ConcurrentMis::new(&g, &pi);
        let sched: MultiQueue<TaskId> = MultiQueue::new(4);
        fill_scheduler(&sched, &pi);
        let _ = run_concurrent(&alg, &pi, &sched, 4);
        assert_eq!(alg.into_output(), expected);
    }
}
