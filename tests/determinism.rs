//! The paper's central claim, tested end-to-end: for every workload and
//! every scheduler (exact, canonical top-k, simulated MultiQueue, simulated
//! SprayList, fully random), the framework's output is identical to the
//! sequential algorithm's for the same priority permutation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::coloring::{greedy_coloring, verify_coloring, ColoringTasks};
use rsched::core::algorithms::knuth_shuffle::{
    fisher_yates, random_targets, shuffle_priorities, ShuffleTasks,
};
use rsched::core::algorithms::list_contraction::{sequential_contraction, ContractionTasks};
use rsched::core::algorithms::matching::{
    greedy_matching, verify_matching, MatchingInstance, MatchingTasks,
};
use rsched::core::algorithms::mis::{greedy_mis, verify_mis, MisTasks};
use rsched::core::framework::{run_exact, run_relaxed, IterativeAlgorithm};
use rsched::core::TaskId;
use rsched::graph::{gen, CsrGraph, ListInstance, Permutation};
use rsched::queues::exact::{BinaryHeapScheduler, PairingHeap};
use rsched::queues::relaxed::{
    RoundRobinTopK, SimMultiQueue, SimSprayList, TopKUniform, UniformRandom,
};
use rsched::queues::PriorityScheduler;

/// Runs `make_alg()` through every scheduler and asserts all outputs equal
/// `expected`.
fn assert_deterministic<A, F>(pi: &Permutation, expected: &A::Output, make_alg: F)
where
    A: IterativeAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
    F: Fn() -> A,
{
    type SchedFactory = Box<dyn FnMut() -> Box<dyn PriorityScheduler<TaskId>>>;
    let scheds: Vec<(&str, SchedFactory)> = vec![
        ("binary-heap", Box::new(|| Box::new(BinaryHeapScheduler::new()))),
        ("pairing-heap", Box::new(|| Box::new(PairingHeap::new()))),
        ("top-4", Box::new(|| Box::new(TopKUniform::new(4, StdRng::seed_from_u64(1))))),
        ("top-64", Box::new(|| Box::new(TopKUniform::new(64, StdRng::seed_from_u64(2))))),
        ("sim-mq-8", Box::new(|| Box::new(SimMultiQueue::new(8, StdRng::seed_from_u64(3))))),
        (
            "sim-spray-16",
            Box::new(|| Box::new(SimSprayList::with_threads(16, StdRng::seed_from_u64(4)))),
        ),
        ("uniform-random", Box::new(|| Box::new(UniformRandom::new(StdRng::seed_from_u64(5))))),
        ("round-robin-8", Box::new(|| Box::new(RoundRobinTopK::new(8)))),
    ];
    let (exact_out, exact_stats) = run_exact(make_alg(), pi);
    assert_eq!(&exact_out, expected, "run_exact diverged from reference");
    assert_eq!(exact_stats.total_pops as usize, pi.len());
    for (name, mut mk) in scheds {
        let (out, stats) = run_relaxed(make_alg(), pi, mk());
        assert_eq!(&out, expected, "scheduler {name} changed the output");
        assert_eq!(
            stats.total_pops,
            pi.len() as u64 + stats.extra_iterations(),
            "accounting broken for {name}"
        );
    }
}

fn test_graphs() -> Vec<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(1000);
    vec![
        gen::gnm(200, 800, &mut rng),
        gen::gnm(500, 500, &mut rng),
        gen::complete(40),
        gen::star(100),
        gen::path(150),
        gen::cycle(99),
        gen::grid2d(12, 12),
        gen::barabasi_albert(300, 3, &mut rng),
        gen::complete_bipartite(30, 50),
        gen::empty(64),
    ]
}

#[test]
fn mis_is_deterministic_on_graph_zoo() {
    let mut rng = StdRng::seed_from_u64(2000);
    for g in test_graphs() {
        let pi = Permutation::random(g.num_vertices(), &mut rng);
        let expected = greedy_mis(&g, &pi);
        assert!(verify_mis(&g, &expected));
        assert_deterministic(&pi, &expected, || MisTasks::new(&g, &pi));
    }
}

#[test]
fn coloring_is_deterministic_on_graph_zoo() {
    let mut rng = StdRng::seed_from_u64(3000);
    for g in test_graphs() {
        let pi = Permutation::random(g.num_vertices(), &mut rng);
        let expected = greedy_coloring(&g, &pi);
        assert!(verify_coloring(&g, &expected));
        assert_deterministic(&pi, &expected, || ColoringTasks::new(&g, &pi));
    }
}

#[test]
fn matching_is_deterministic_on_graph_zoo() {
    let mut rng = StdRng::seed_from_u64(4000);
    for g in test_graphs() {
        let inst = MatchingInstance::new(&g);
        if inst.num_edges() == 0 {
            continue;
        }
        let pi = Permutation::random(inst.num_edges(), &mut rng);
        let expected = greedy_matching(&inst, &pi);
        assert!(verify_matching(&inst, &expected));
        assert_deterministic(&pi, &expected, || MatchingTasks::new(&inst, &pi));
    }
}

#[test]
fn list_contraction_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(5000);
    for n in [1usize, 2, 17, 400] {
        let list = ListInstance::new_shuffled(n, &mut rng);
        let pi = Permutation::random(n, &mut rng);
        let expected = sequential_contraction(&list, &pi);
        assert_deterministic(&pi, &expected, || ContractionTasks::new(&list, &pi));
    }
}

#[test]
fn knuth_shuffle_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(6000);
    for n in [1usize, 2, 33, 400] {
        let targets = random_targets(n, &mut rng);
        let pi = shuffle_priorities(n);
        let expected = fisher_yates(&targets);
        assert_deterministic(&pi, &expected, || ShuffleTasks::new(targets.clone()));
    }
}

#[test]
fn different_permutations_give_different_but_valid_outputs() {
    // Determinism is per-π: two permutations generally disagree, but both
    // outputs are valid. (Guards against "deterministic because constant".)
    let mut rng = StdRng::seed_from_u64(7000);
    let g = gen::gnm(300, 2000, &mut rng);
    let pi1 = Permutation::random(300, &mut rng);
    let pi2 = Permutation::random(300, &mut rng);
    let m1 = greedy_mis(&g, &pi1);
    let m2 = greedy_mis(&g, &pi2);
    assert!(verify_mis(&g, &m1) && verify_mis(&g, &m2));
    assert_ne!(m1, m2, "two random permutations almost surely differ");
}
