//! SSSP integration: every scheduler (sequential models, concurrent
//! structures) converges to Dijkstra's distances on assorted graph shapes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::sssp::{concurrent_sssp, dijkstra, relaxed_sssp, UNREACHABLE};
use rsched::graph::{gen, WeightedCsr};
use rsched::queues::concurrent::{LockFreeMultiQueue, MultiQueue, SprayList};
use rsched::queues::exact::PairingHeap;
use rsched::queues::relaxed::SimMultiQueue;

fn weighted(n: usize, m: usize, seed: u64) -> WeightedCsr {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnm(n, m, &mut rng);
    WeightedCsr::with_uniform_weights(&g, 1, 1000, &mut rng)
}

#[test]
fn pairing_heap_matches_binary_heap_dijkstra() {
    let g = weighted(500, 3000, 1);
    let expected = dijkstra(&g, 0);
    let (dist, stats) = relaxed_sssp(&g, 0, PairingHeap::new());
    assert_eq!(dist, expected);
    assert_eq!(stats.pops, 1 + stats.relaxations);
}

#[test]
fn relaxed_models_converge() {
    let g = weighted(1_000, 8_000, 2);
    let expected = dijkstra(&g, 3);
    for q in [2usize, 16, 64] {
        let (dist, _) = relaxed_sssp(&g, 3, SimMultiQueue::new(q, StdRng::seed_from_u64(5)));
        assert_eq!(dist, expected, "q = {q}");
    }
}

#[test]
fn concurrent_schedulers_converge() {
    let g = weighted(1_000, 6_000, 3);
    let expected = dijkstra(&g, 0);
    for threads in [1usize, 2, 4] {
        let mq: MultiQueue<u32> = MultiQueue::for_threads(threads);
        assert_eq!(concurrent_sssp(&g, 0, &mq, threads), expected, "mq t={threads}");
    }
    let lf: LockFreeMultiQueue<u32> = LockFreeMultiQueue::new(8);
    assert_eq!(concurrent_sssp(&g, 0, &lf, 2), expected);
    let spray: SprayList<u32> = SprayList::new(2);
    assert_eq!(concurrent_sssp(&g, 0, &spray, 2), expected);
}

#[test]
fn structured_graphs() {
    // Path: distances are prefix sums.
    let triples: Vec<(u32, u32, u32)> = (0..99u32).map(|i| (i, i + 1, 2)).collect();
    let g = WeightedCsr::from_weighted_edges(100, triples);
    let dist = dijkstra(&g, 0);
    for (v, &d) in dist.iter().enumerate() {
        assert_eq!(d, 2 * v as u64);
    }
    // Star: everything at one hop.
    let star: Vec<(u32, u32, u32)> = (1..50u32).map(|i| (0, i, 7)).collect();
    let g = WeightedCsr::from_weighted_edges(50, star);
    let dist = dijkstra(&g, 0);
    assert!(dist[1..].iter().all(|&d| d == 7));
}

#[test]
fn unreachable_parts_stay_unreachable_concurrently() {
    let g = WeightedCsr::from_weighted_edges(6, [(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
    let mq: MultiQueue<u32> = MultiQueue::new(4);
    let dist = concurrent_sssp(&g, 0, &mq, 2);
    assert_eq!(dist[3], UNREACHABLE);
    assert_eq!(dist[4], UNREACHABLE);
    assert_eq!(dist[5], UNREACHABLE);
    assert_eq!(dist[2], 2);
}

#[test]
fn heavier_concurrent_instance() {
    let g = weighted(20_000, 200_000, 9);
    let expected = dijkstra(&g, 0);
    let mq: MultiQueue<u32> = MultiQueue::for_threads(2);
    assert_eq!(concurrent_sssp(&g, 0, &mq, 2), expected);
}
