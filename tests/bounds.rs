//! Statistical bound checks: the *shapes* of Theorems 1 and 2, with
//! generous margins so the suite stays deterministic-in-practice under
//! seeded randomness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::coloring::ColoringTasks;
use rsched::core::algorithms::mis::MisTasks;
use rsched::core::framework::run_relaxed;
use rsched::graph::{gen, Permutation};
use rsched::queues::relaxed::{SimMultiQueue, TopKUniform};

fn mis_extra(n: usize, m: usize, k: usize, seed: u64, reps: usize) -> f64 {
    let mut total = 0u64;
    for r in 0..reps {
        let s = seed + r as u64;
        let mut rng = StdRng::seed_from_u64(s);
        let g = gen::gnm(n, m, &mut rng);
        let pi = Permutation::random(n, &mut rng);
        let sched = SimMultiQueue::new(k, StdRng::seed_from_u64(s ^ 0xA5A5));
        let (_, stats) = run_relaxed(MisTasks::new(&g, &pi), &pi, sched);
        total += stats.extra_iterations();
    }
    total as f64 / reps as f64
}

#[test]
fn theorem2_mis_extra_does_not_grow_with_n() {
    // 16x growth in n at fixed k: extra iterations should stay within a
    // small constant factor (the theorem says they are independent of n).
    let k = 8;
    let small = mis_extra(2_000, 20_000, k, 100, 4);
    let large = mis_extra(32_000, 320_000, k, 200, 4);
    assert!(large < 6.0 * small.max(16.0), "extra grew with n: {small:.1} -> {large:.1}");
}

#[test]
fn theorem2_mis_extra_grows_with_k() {
    let lo = mis_extra(8_000, 80_000, 4, 300, 3);
    let hi = mis_extra(8_000, 80_000, 64, 300, 3);
    assert!(hi > 4.0 * lo.max(1.0), "extra should grow with k: {lo:.1} vs {hi:.1}");
}

#[test]
fn exact_scheduler_wastes_nothing() {
    let mut rng = StdRng::seed_from_u64(400);
    let g = gen::gnm(3_000, 30_000, &mut rng);
    let pi = Permutation::random(3_000, &mut rng);
    let sched = TopKUniform::new(1, StdRng::seed_from_u64(1)); // k = 1 ≡ exact
    let (_, stats) = run_relaxed(MisTasks::new(&g, &pi), &pi, sched);
    assert_eq!(stats.wasted, 0);
    assert_eq!(stats.total_pops, 3_000);
}

#[test]
fn theorem1_coloring_extra_scales_with_density() {
    // Fixed n and k, 16x edge growth: extra iterations should grow roughly
    // linearly in m (within loose factors).
    let n = 4_000;
    let k = 16;
    let run = |m: usize, seed: u64| -> f64 {
        let mut total = 0u64;
        for r in 0..3 {
            let s = seed + r;
            let mut rng = StdRng::seed_from_u64(s);
            let g = gen::gnm(n, m, &mut rng);
            let pi = Permutation::random(n, &mut rng);
            let sched = TopKUniform::new(k, StdRng::seed_from_u64(s ^ 0x5A5A));
            let (_, stats) = run_relaxed(ColoringTasks::new(&g, &pi), &pi, sched);
            total += stats.extra_iterations();
        }
        total as f64 / 3.0
    };
    let sparse = run(n, 500);
    let dense = run(16 * n, 600);
    let ratio = dense / sparse.max(1.0);
    assert!(
        (4.0..80.0).contains(&ratio),
        "expected ≈16x growth for 16x density, got {ratio:.1}x ({sparse:.1} -> {dense:.1})"
    );
}

#[test]
fn clique_coloring_extra_is_order_nk() {
    // The paper's tightness example: only the top task is ever ready, so a
    // k-relaxed queue pays ≈ (k-ish) failed deletes per processed vertex.
    let n = 150;
    let g = gen::complete(n);
    let pi = Permutation::random(n, &mut StdRng::seed_from_u64(700));
    for k in [4usize, 16] {
        let sched = TopKUniform::new(k, StdRng::seed_from_u64(701));
        let (_, stats) = run_relaxed(ColoringTasks::new(&g, &pi), &pi, sched);
        let extra = stats.extra_iterations() as f64;
        let nk = (n * k) as f64;
        assert!(
            extra > 0.2 * nk && extra < 3.0 * nk,
            "clique extra {extra} not within [0.2, 3]×nk (nk = {nk})"
        );
    }
}

#[test]
fn waste_is_monotone_in_relaxation_on_average() {
    // Averaged over several seeds, more relaxation never helps the waste.
    let n = 5_000;
    let mut rng = StdRng::seed_from_u64(800);
    let g = gen::gnm(n, 50_000, &mut rng);
    let pi = Permutation::random(n, &mut rng);
    let avg = |k: usize| -> f64 {
        (0..5)
            .map(|s| {
                let sched = SimMultiQueue::new(k, StdRng::seed_from_u64(900 + s));
                run_relaxed(MisTasks::new(&g, &pi), &pi, sched).1.extra_iterations() as f64
            })
            .sum::<f64>()
            / 5.0
    };
    let e2 = avg(2);
    let e16 = avg(16);
    let e64 = avg(64);
    assert!(e2 <= e16 && e16 <= e64, "waste not monotone: {e2:.1}, {e16:.1}, {e64:.1}");
}
