//! Property-based integration tests: arbitrary graphs, permutations, seeds
//! and schedulers; outputs must always be valid *and* equal the sequential
//! reference.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsched::core::algorithms::coloring::{greedy_coloring, verify_coloring, ColoringTasks};
use rsched::core::algorithms::knuth_shuffle::{fisher_yates, shuffle_priorities, ShuffleTasks};
use rsched::core::algorithms::list_contraction::{sequential_contraction, ContractionTasks};
use rsched::core::algorithms::matching::{
    greedy_matching, verify_matching, MatchingInstance, MatchingTasks,
};
use rsched::core::algorithms::mis::{greedy_mis, verify_mis, MisTasks};
use rsched::core::framework::run_relaxed;
use rsched::graph::{CsrGraph, ListInstance, Permutation};
use rsched::queues::relaxed::{SimMultiQueue, SimSprayList, TopKUniform};

/// Strategy: a graph on `1..=max_n` vertices with arbitrary edges.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m)
            .prop_map(move |edges| CsrGraph::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mis_valid_and_deterministic(
        g in arb_graph(48, 256),
        pi_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        k in 1usize..32,
    ) {
        let pi = Permutation::random(g.num_vertices(), &mut StdRng::seed_from_u64(pi_seed));
        let expected = greedy_mis(&g, &pi);
        prop_assert!(verify_mis(&g, &expected));
        let sched = TopKUniform::new(k, StdRng::seed_from_u64(sched_seed));
        let (out, stats) = run_relaxed(MisTasks::new(&g, &pi), &pi, sched);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(stats.processed + stats.obsolete, g.num_vertices() as u64);
    }

    #[test]
    fn coloring_valid_and_deterministic(
        g in arb_graph(48, 256),
        pi_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        q in 1usize..16,
    ) {
        let pi = Permutation::random(g.num_vertices(), &mut StdRng::seed_from_u64(pi_seed));
        let expected = greedy_coloring(&g, &pi);
        prop_assert!(verify_coloring(&g, &expected));
        let sched = SimMultiQueue::new(q, StdRng::seed_from_u64(sched_seed));
        let (out, _) = run_relaxed(ColoringTasks::new(&g, &pi), &pi, sched);
        prop_assert_eq!(&out, &expected);
        // Greedy never uses more colors than max degree + 1.
        let max_color = *out.iter().max().unwrap_or(&0) as usize;
        prop_assert!(g.num_vertices() == 0 || max_color <= g.max_degree());
    }

    #[test]
    fn matching_valid_and_deterministic(
        g in arb_graph(32, 128),
        pi_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let inst = MatchingInstance::new(&g);
        prop_assume!(inst.num_edges() > 0);
        let pi = Permutation::random(inst.num_edges(), &mut StdRng::seed_from_u64(pi_seed));
        let expected = greedy_matching(&inst, &pi);
        prop_assert!(verify_matching(&inst, &expected));
        let sched = SimSprayList::with_threads(8, StdRng::seed_from_u64(sched_seed));
        let (out, _) = run_relaxed(MatchingTasks::new(&inst, &pi), &pi, sched);
        prop_assert_eq!(&out, &expected);
    }

    #[test]
    fn contraction_deterministic(
        n in 1usize..128,
        order_seed in any::<u64>(),
        pi_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        k in 1usize..24,
    ) {
        let list = ListInstance::new_shuffled(n, &mut StdRng::seed_from_u64(order_seed));
        let pi = Permutation::random(n, &mut StdRng::seed_from_u64(pi_seed));
        let expected = sequential_contraction(&list, &pi);
        let sched = TopKUniform::new(k, StdRng::seed_from_u64(sched_seed));
        let (out, _) = run_relaxed(ContractionTasks::new(&list, &pi), &pi, sched);
        prop_assert_eq!(&out, &expected);
    }

    #[test]
    fn shuffle_deterministic_and_permutes(
        targets_raw in proptest::collection::vec(any::<u32>(), 1..128),
        sched_seed in any::<u64>(),
        q in 1usize..16,
    ) {
        // Normalize arbitrary u32s into valid targets H[i] ∈ [0, i].
        let targets: Vec<u32> = targets_raw
            .iter()
            .enumerate()
            .map(|(i, &r)| (r as usize % (i + 1)) as u32)
            .collect();
        let n = targets.len();
        let pi = shuffle_priorities(n);
        let expected = fisher_yates(&targets);
        let mut check = expected.clone();
        check.sort_unstable();
        prop_assert_eq!(check, (0..n as u32).collect::<Vec<_>>());
        let sched = SimMultiQueue::new(q, StdRng::seed_from_u64(sched_seed));
        let (out, _) = run_relaxed(ShuffleTasks::new(targets), &pi, sched);
        prop_assert_eq!(&out, &expected);
    }

    #[test]
    fn mis_and_matching_outputs_relate(
        g in arb_graph(24, 64),
        pi_seed in any::<u64>(),
    ) {
        // Structural cross-check: a maximal matching, viewed as vertices,
        // touches every edge (it is a vertex cover via its endpoints).
        let inst = MatchingInstance::new(&g);
        prop_assume!(inst.num_edges() > 0);
        let pi = Permutation::random(inst.num_edges(), &mut StdRng::seed_from_u64(pi_seed));
        let m = greedy_matching(&inst, &pi);
        let mut covered = vec![false; g.num_vertices()];
        for (e, &inm) in m.iter().enumerate() {
            if inm {
                let (a, b) = inst.edges[e];
                covered[a as usize] = true;
                covered[b as usize] = true;
            }
        }
        for (u, v) in g.edges() {
            prop_assert!(covered[u as usize] || covered[v as usize],
                "edge ({u},{v}) not covered: matching not maximal");
        }
    }
}
