#!/usr/bin/env bash
# Workspace surface smoke test: builds and runs every example and --help's
# every experiment binary. CI runs this after the test suite so future PRs
# cannot silently break the runnable surface (`cargo test` alone does not
# execute examples).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== examples"
for ex in examples/*.rs; do
    name="$(basename "${ex%.rs}")"
    echo "-- example: ${name}"
    cargo run --quiet --release --example "${name}" >/dev/null
done

echo "== experiment binaries (--help)"
for bin in crates/bench/src/bin/*.rs; do
    name="$(basename "${bin%.rs}")"
    echo "-- binary: ${name} --help"
    cargo run --quiet --release -p rsched-bench --bin "${name}" -- --help >/dev/null
done

echo "== incremental workloads (fast mode, verifier-asserted end to end)"
RSCHED_BENCH_FAST=1 cargo run --quiet --release -p rsched-bench --bin incremental_algos >/dev/null

echo "== fine-grained delaunay (fast mode, 8-way contention drives the lock Blocked-retry path)"
# Oversubscribed thread counts on a small instance make cavity lock
# conflicts (and hence Blocked-driven retries) near-certain; every cell is
# still verifier-asserted inside the binary.
RSCHED_BENCH_FAST=1 cargo run --quiet --release -p rsched-bench --bin incremental_algos -- \
    --threads 4,8 --pts 600 >/dev/null

echo "== streaming service (fast mode, exactly-once ledger asserted end to end)"
RSCHED_BENCH_FAST=1 cargo run --quiet --release -p rsched-bench --bin service_throughput >/dev/null

echo "smoke: all examples ran, all binaries answer --help, incremental + service fast runs clean"
